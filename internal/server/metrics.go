package server

import (
	"fmt"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/codegen"
)

// latencyBuckets are the fixed histogram upper bounds, in seconds. They
// bracket the pipeline's observed range: sub-millisecond cache hits up to
// multi-second refined compiles of unrolled loops.
var latencyBuckets = []float64{0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 10}

// metrics aggregates the service's counters without external
// dependencies; /metrics renders them in the Prometheus text format so
// standard scrapers parse the output, but nothing here imports one.
type metrics struct {
	start time.Time

	mu       sync.Mutex
	byCode   map[int]int64
	buckets  []int64 // len(latencyBuckets)+1; last is +Inf
	latSum   float64
	latCount int64

	// Batch endpoint telemetry: whole-batch latency histogram (same
	// bucket bounds) plus the item throughput counter.
	batchBuckets []int64
	batchSum     float64
	batchCount   int64
	batchItems   atomic.Int64

	deadlineExpired atomic.Int64
	clientGone      atomic.Int64

	// Exact-arm telemetry, aggregated over compiles whose result carried
	// an ExactReport (ExactBudget > 0).
	exactRuns      atomic.Int64 // compiles where an exact arm engaged
	exactProven    atomic.Int64 // final II certified optimal
	exactExhausted atomic.Int64 // scheduler engaged but budget ran out
	exactImproved  atomic.Int64 // exact search beat the heuristic II

	// Adaptive-weights telemetry, aggregated over compiles whose result
	// carried an AdaptiveReport (the -adaptive flag).
	adaptiveRuns  atomic.Int64 // compiles where the adaptive arm produced a candidate
	adaptiveWins  atomic.Int64 // compiles where that candidate was adopted
	adaptiveExact atomic.Int64 // candidates predicted from an exact feature-bucket match
}

// observeAdaptive folds one compile's adaptive-arm telemetry into the
// counters.
func (m *metrics) observeAdaptive(a *codegen.AdaptiveReport) {
	if a == nil || !a.Ran {
		return
	}
	m.adaptiveRuns.Add(1)
	if a.Won {
		m.adaptiveWins.Add(1)
	}
	if a.ExactBucket {
		m.adaptiveExact.Add(1)
	}
}

// observeExact folds one compile's exact-arm telemetry into the counters.
func (m *metrics) observeExact(e *codegen.ExactReport) {
	if e == nil {
		return
	}
	if e.SchedRan || e.PartRan {
		m.exactRuns.Add(1)
	}
	if e.SchedProven {
		m.exactProven.Add(1)
	} else if e.SchedRan {
		m.exactExhausted.Add(1)
	}
	if e.SchedImproved {
		m.exactImproved.Add(1)
	}
}

func newMetrics(now time.Time) *metrics {
	return &metrics{
		start:        now,
		byCode:       make(map[int]int64),
		buckets:      make([]int64, len(latencyBuckets)+1),
		batchBuckets: make([]int64, len(latencyBuckets)+1),
	}
}

// observe records one finished request.
func (m *metrics) observe(code int, d time.Duration) {
	sec := d.Seconds()
	m.mu.Lock()
	defer m.mu.Unlock()
	m.byCode[code]++
	m.latSum += sec
	m.latCount++
	for i, ub := range latencyBuckets {
		if sec <= ub {
			m.buckets[i]++
			return
		}
	}
	m.buckets[len(latencyBuckets)]++
}

// observeBatch records one finished /compile/batch request.
func (m *metrics) observeBatch(items int, d time.Duration) {
	m.batchItems.Add(int64(items))
	sec := d.Seconds()
	m.mu.Lock()
	defer m.mu.Unlock()
	m.batchSum += sec
	m.batchCount++
	for i, ub := range latencyBuckets {
		if sec <= ub {
			m.batchBuckets[i]++
			return
		}
	}
	m.batchBuckets[len(latencyBuckets)]++
}

// handler renders every gauge and counter the server owns, plus the
// tracer's per-stage aggregates and the cache's hit/miss counts.
func (s *Server) metricsHandler(w http.ResponseWriter, _ *http.Request) {
	m := s.metrics
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")

	fmt.Fprintf(w, "# HELP swpd_up Uptime in seconds.\n# TYPE swpd_up gauge\n")
	fmt.Fprintf(w, "swpd_up %g\n", time.Since(m.start).Seconds())

	fmt.Fprintf(w, "# HELP swpd_requests_total Finished /compile requests by status code.\n# TYPE swpd_requests_total counter\n")
	m.mu.Lock()
	codes := make([]int, 0, len(m.byCode))
	for c := range m.byCode {
		codes = append(codes, c)
	}
	sort.Ints(codes)
	for _, c := range codes {
		fmt.Fprintf(w, "swpd_requests_total{code=\"%d\"} %d\n", c, m.byCode[c])
	}
	fmt.Fprintf(w, "# HELP swpd_request_seconds Compile request latency.\n# TYPE swpd_request_seconds histogram\n")
	cum := int64(0)
	for i, ub := range latencyBuckets {
		cum += m.buckets[i]
		fmt.Fprintf(w, "swpd_request_seconds_bucket{le=\"%g\"} %d\n", ub, cum)
	}
	cum += m.buckets[len(latencyBuckets)]
	fmt.Fprintf(w, "swpd_request_seconds_bucket{le=\"+Inf\"} %d\n", cum)
	fmt.Fprintf(w, "swpd_request_seconds_sum %g\n", m.latSum)
	fmt.Fprintf(w, "swpd_request_seconds_count %d\n", m.latCount)
	fmt.Fprintf(w, "# HELP swpd_batch_seconds Whole-batch /compile/batch latency.\n# TYPE swpd_batch_seconds histogram\n")
	cum = 0
	for i, ub := range latencyBuckets {
		cum += m.batchBuckets[i]
		fmt.Fprintf(w, "swpd_batch_seconds_bucket{le=\"%g\"} %d\n", ub, cum)
	}
	cum += m.batchBuckets[len(latencyBuckets)]
	fmt.Fprintf(w, "swpd_batch_seconds_bucket{le=\"+Inf\"} %d\n", cum)
	fmt.Fprintf(w, "swpd_batch_seconds_sum %g\n", m.batchSum)
	fmt.Fprintf(w, "swpd_batch_seconds_count %d\n", m.batchCount)
	m.mu.Unlock()
	fmt.Fprintf(w, "# HELP swpd_batch_items_total Loops compiled through /compile/batch.\n# TYPE swpd_batch_items_total counter\n")
	fmt.Fprintf(w, "swpd_batch_items_total %d\n", m.batchItems.Load())

	fmt.Fprintf(w, "# HELP swpd_deadline_expired_total Requests that hit their deadline mid-compile.\n# TYPE swpd_deadline_expired_total counter\n")
	fmt.Fprintf(w, "swpd_deadline_expired_total %d\n", m.deadlineExpired.Load())
	fmt.Fprintf(w, "# HELP swpd_client_gone_total Requests whose client disconnected mid-compile.\n# TYPE swpd_client_gone_total counter\n")
	fmt.Fprintf(w, "swpd_client_gone_total %d\n", m.clientGone.Load())

	fmt.Fprintf(w, "# HELP swpd_exact_runs_total Compiles where an exact-solver arm engaged.\n# TYPE swpd_exact_runs_total counter\n")
	fmt.Fprintf(w, "swpd_exact_runs_total %d\n", m.exactRuns.Load())
	fmt.Fprintf(w, "# HELP swpd_exact_proven_total Compiles whose final II was certified optimal.\n# TYPE swpd_exact_proven_total counter\n")
	fmt.Fprintf(w, "swpd_exact_proven_total %d\n", m.exactProven.Load())
	fmt.Fprintf(w, "# HELP swpd_exact_budget_exhausted_total Exact searches that spent their budget unproven.\n# TYPE swpd_exact_budget_exhausted_total counter\n")
	fmt.Fprintf(w, "swpd_exact_budget_exhausted_total %d\n", m.exactExhausted.Load())
	fmt.Fprintf(w, "# HELP swpd_exact_improved_total Compiles where the exact search beat the heuristic II.\n# TYPE swpd_exact_improved_total counter\n")
	fmt.Fprintf(w, "swpd_exact_improved_total %d\n", m.exactImproved.Load())

	fmt.Fprintf(w, "# HELP swpd_adaptive_runs_total Compiles where the adaptive-weights arm produced a candidate.\n# TYPE swpd_adaptive_runs_total counter\n")
	fmt.Fprintf(w, "swpd_adaptive_runs_total %d\n", m.adaptiveRuns.Load())
	fmt.Fprintf(w, "# HELP swpd_adaptive_wins_total Compiles where the adaptive candidate was adopted.\n# TYPE swpd_adaptive_wins_total counter\n")
	fmt.Fprintf(w, "swpd_adaptive_wins_total %d\n", m.adaptiveWins.Load())
	fmt.Fprintf(w, "# HELP swpd_adaptive_exact_bucket_total Adaptive candidates predicted from an exact feature-bucket match.\n# TYPE swpd_adaptive_exact_bucket_total counter\n")
	fmt.Fprintf(w, "swpd_adaptive_exact_bucket_total %d\n", m.adaptiveExact.Load())

	fmt.Fprintf(w, "# HELP swpd_queue_depth Tasks waiting in the compile queue.\n# TYPE swpd_queue_depth gauge\n")
	fmt.Fprintf(w, "swpd_queue_depth %d\n", s.pool.queued.Load())
	fmt.Fprintf(w, "# HELP swpd_in_flight Compilations running right now.\n# TYPE swpd_in_flight gauge\n")
	fmt.Fprintf(w, "swpd_in_flight %d\n", s.pool.inFlight.Load())
	fmt.Fprintf(w, "# HELP swpd_rejected_total Requests shed with 429 because the queue was full.\n# TYPE swpd_rejected_total counter\n")
	fmt.Fprintf(w, "swpd_rejected_total %d\n", s.pool.rejected.Load())

	if s.cfg.Pipeline.Cache.Enabled() {
		st := s.cfg.Pipeline.Cache.Stats()
		fmt.Fprintf(w, "# HELP swpd_cache_hits_total Compile cache hits.\n# TYPE swpd_cache_hits_total counter\n")
		fmt.Fprintf(w, "swpd_cache_hits_total %d\n", st.Hits)
		fmt.Fprintf(w, "# HELP swpd_cache_misses_total Compile cache misses.\n# TYPE swpd_cache_misses_total counter\n")
		fmt.Fprintf(w, "swpd_cache_misses_total %d\n", st.Misses)
		fmt.Fprintf(w, "# HELP swpd_cache_entries Cached stage results resident.\n# TYPE swpd_cache_entries gauge\n")
		fmt.Fprintf(w, "swpd_cache_entries %d\n", st.Entries)
		fmt.Fprintf(w, "# HELP swpd_cache_bytes Estimated resident bytes of cached stage results.\n# TYPE swpd_cache_bytes gauge\n")
		fmt.Fprintf(w, "swpd_cache_bytes %d\n", st.Bytes)
		fmt.Fprintf(w, "# HELP swpd_cache_budget_bytes Configured cache byte budget (0 = unlimited, -1 = retain nothing).\n# TYPE swpd_cache_budget_bytes gauge\n")
		fmt.Fprintf(w, "swpd_cache_budget_bytes %d\n", s.cfg.Pipeline.Cache.Budget())
		fmt.Fprintf(w, "# HELP swpd_cache_evictions_total Entries evicted by the cache byte budget.\n# TYPE swpd_cache_evictions_total counter\n")
		fmt.Fprintf(w, "swpd_cache_evictions_total %d\n", st.Evictions)
		fmt.Fprintf(w, "# HELP swpd_cache_pinned Cache entries pinned by in-flight lookups.\n# TYPE swpd_cache_pinned gauge\n")
		fmt.Fprintf(w, "swpd_cache_pinned %d\n", st.Pinned)

		if d := s.cfg.Pipeline.Cache.Disk(); d != nil {
			ds := d.Stats()
			fmt.Fprintf(w, "# HELP swpd_disk_cache_hits_total Lookups restored from the persistent tier instead of recomputed.\n# TYPE swpd_disk_cache_hits_total counter\n")
			fmt.Fprintf(w, "swpd_disk_cache_hits_total %d\n", st.DiskHits)
			fmt.Fprintf(w, "# HELP swpd_disk_cache_misses_total Disk-tier consultations that found no usable record.\n# TYPE swpd_disk_cache_misses_total counter\n")
			fmt.Fprintf(w, "swpd_disk_cache_misses_total %d\n", ds.Misses)
			fmt.Fprintf(w, "# HELP swpd_disk_cache_entries Records resident in the disk tier.\n# TYPE swpd_disk_cache_entries gauge\n")
			fmt.Fprintf(w, "swpd_disk_cache_entries %d\n", ds.Entries)
			fmt.Fprintf(w, "# HELP swpd_disk_cache_bytes Record bytes resident in the disk tier.\n# TYPE swpd_disk_cache_bytes gauge\n")
			fmt.Fprintf(w, "swpd_disk_cache_bytes %d\n", ds.Bytes)
			fmt.Fprintf(w, "# HELP swpd_disk_cache_budget_bytes Configured disk-tier byte budget (0 = unlimited).\n# TYPE swpd_disk_cache_budget_bytes gauge\n")
			fmt.Fprintf(w, "swpd_disk_cache_budget_bytes %d\n", d.Budget())
			fmt.Fprintf(w, "# HELP swpd_disk_cache_writes_total Records written behind to the disk tier.\n# TYPE swpd_disk_cache_writes_total counter\n")
			fmt.Fprintf(w, "swpd_disk_cache_writes_total %d\n", ds.Writes)
			fmt.Fprintf(w, "# HELP swpd_disk_cache_evictions_total Records evicted by the disk byte budget.\n# TYPE swpd_disk_cache_evictions_total counter\n")
			fmt.Fprintf(w, "swpd_disk_cache_evictions_total %d\n", ds.Evictions)
			fmt.Fprintf(w, "# HELP swpd_disk_cache_verify_failures_total Records that failed checksum or decode verification and were quarantined.\n# TYPE swpd_disk_cache_verify_failures_total counter\n")
			fmt.Fprintf(w, "swpd_disk_cache_verify_failures_total %d\n", ds.VerifyFailures)
		}
	}

	if rt := s.cfg.Cluster; rt.Enabled() {
		cs := rt.Stats()
		fmt.Fprintf(w, "# HELP swpd_cluster_local_total Requests this node owned and compiled locally.\n# TYPE swpd_cluster_local_total counter\n")
		fmt.Fprintf(w, "swpd_cluster_local_total %d\n", cs.Local)
		fmt.Fprintf(w, "# HELP swpd_cluster_remote_total Requests proxied to their ring owner (batch sub-requests count once).\n# TYPE swpd_cluster_remote_total counter\n")
		fmt.Fprintf(w, "swpd_cluster_remote_total %d\n", cs.Remote)
		fmt.Fprintf(w, "# HELP swpd_cluster_failovers_total Attempts that moved past an unreachable ring node.\n# TYPE swpd_cluster_failovers_total counter\n")
		fmt.Fprintf(w, "swpd_cluster_failovers_total %d\n", cs.Failovers)
		fmt.Fprintf(w, "# HELP swpd_cluster_errors_total Requests no replica could serve.\n# TYPE swpd_cluster_errors_total counter\n")
		fmt.Fprintf(w, "swpd_cluster_errors_total %d\n", cs.Errors)
		peers := make([]string, 0, len(cs.Peers))
		for p := range cs.Peers {
			peers = append(peers, p)
		}
		sort.Strings(peers)
		fmt.Fprintf(w, "# HELP swpd_cluster_peer_requests_total Proxied requests per ring peer.\n# TYPE swpd_cluster_peer_requests_total counter\n")
		for _, p := range peers {
			fmt.Fprintf(w, "swpd_cluster_peer_requests_total{peer=%q} %d\n", p, cs.Peers[p].Requests)
		}
		fmt.Fprintf(w, "# HELP swpd_cluster_peer_failures_total Transport failures per ring peer.\n# TYPE swpd_cluster_peer_failures_total counter\n")
		for _, p := range peers {
			fmt.Fprintf(w, "swpd_cluster_peer_failures_total{peer=%q} %d\n", p, cs.Peers[p].Failures)
		}
		fmt.Fprintf(w, "# HELP swpd_cluster_peer_healthy Whether the peer is currently taking traffic.\n# TYPE swpd_cluster_peer_healthy gauge\n")
		for _, p := range peers {
			up := 0
			if cs.Peers[p].Healthy {
				up = 1
			}
			fmt.Fprintf(w, "swpd_cluster_peer_healthy{peer=%q} %d\n", p, up)
		}
	}

	if t := s.cfg.Pipeline.IISeed; t != nil {
		st := t.Stats()
		fmt.Fprintf(w, "# HELP swpd_iiseed_lookups_total II-seed table consultations.\n# TYPE swpd_iiseed_lookups_total counter\n")
		fmt.Fprintf(w, "swpd_iiseed_lookups_total %d\n", st.Lookups)
		fmt.Fprintf(w, "# HELP swpd_iiseed_found_total Consultations that located an entry (table coverage).\n# TYPE swpd_iiseed_found_total counter\n")
		fmt.Fprintf(w, "swpd_iiseed_found_total %d\n", st.Found)
		fmt.Fprintf(w, "# HELP swpd_iiseed_hits_total Consultations that advanced the II search start.\n# TYPE swpd_iiseed_hits_total counter\n")
		fmt.Fprintf(w, "swpd_iiseed_hits_total %d\n", st.Hits)
		fmt.Fprintf(w, "# HELP swpd_iiseed_saved_attempts_total Candidate-II attempts skipped thanks to seeds.\n# TYPE swpd_iiseed_saved_attempts_total counter\n")
		fmt.Fprintf(w, "swpd_iiseed_saved_attempts_total %d\n", st.SavedAttempts)
		fmt.Fprintf(w, "# HELP swpd_iiseed_entries Seeds resident in the table.\n# TYPE swpd_iiseed_entries gauge\n")
		fmt.Fprintf(w, "swpd_iiseed_entries %d\n", t.Len())
		fmt.Fprintf(w, "# HELP swpd_iiseed_evictions_total Seeds displaced by the capacity bound.\n# TYPE swpd_iiseed_evictions_total counter\n")
		fmt.Fprintf(w, "swpd_iiseed_evictions_total %d\n", st.Evictions)
	}

	if s.cfg.Pipeline.Tracer.Enabled() {
		fmt.Fprintf(w, "# HELP swpd_stage_seconds_total Cumulative wall time per pipeline stage.\n# TYPE swpd_stage_seconds_total counter\n")
		stats := s.cfg.Pipeline.Tracer.Stats()
		for _, st := range stats {
			fmt.Fprintf(w, "swpd_stage_seconds_total{stage=%q} %g\n", st.Name, st.Total.Seconds())
		}
		fmt.Fprintf(w, "# HELP swpd_stage_count_total Span count per pipeline stage.\n# TYPE swpd_stage_count_total counter\n")
		for _, st := range stats {
			fmt.Fprintf(w, "swpd_stage_count_total{stage=%q} %d\n", st.Name, st.Count)
		}
		counters := s.cfg.Pipeline.Tracer.Counters()
		if len(counters) > 0 {
			names := make([]string, 0, len(counters))
			for n := range counters {
				names = append(names, n)
			}
			sort.Strings(names)
			fmt.Fprintf(w, "# HELP swpd_pipeline_counter Pipeline event counters.\n# TYPE swpd_pipeline_counter counter\n")
			for _, n := range names {
				fmt.Fprintf(w, "swpd_pipeline_counter{name=%q} %d\n", n, counters[n])
			}
		}
	}
}
