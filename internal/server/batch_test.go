package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/cache"
	"repro/internal/codegen"
	"repro/internal/loopgen"
	"repro/internal/trace"
)

// postBatch fires one buffered /compile/batch request and decodes the
// response; non-200 responses are decoded into an ErrorResponse instead.
func postBatch(t *testing.T, url string, req *BatchRequest, out any) int {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/compile/batch", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %d response: %v", resp.StatusCode, err)
		}
	}
	return resp.StatusCode
}

// TestBatchMixedItems proves the partial-failure contract: one batch
// carrying good loops and one malformed loop yields HTTP 200 with the
// bad item failed item-level, good items compiled normally, and every
// item in request order. It also pins the default inheritance (machine,
// per-item names) and that a second identical batch is served from the
// cache with the tier labeled.
func TestBatchMixedItems(t *testing.T) {
	s := New(Config{Pipeline: codegen.Config{Cache: cache.New(), Tracer: trace.New()}})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	req := &BatchRequest{
		RequestDefaults: RequestDefaults{Machine: MachineSpec{Clusters: 4, CopyModel: "embedded"}},
		Items: []CompileRequest{
			{Name: "good-a", Source: dotSource(2)},
			{Source: "0: this is not a loop"},
			{Name: "good-b", Source: dotSource(3), Machine: MachineSpec{Clusters: 2}},
		},
	}
	var got BatchResponse
	if code := postBatch(t, ts.URL, req, &got); code != http.StatusOK {
		t.Fatalf("status %d, want 200 despite the bad item", code)
	}
	if len(got.Items) != 3 || got.Errors != 1 {
		t.Fatalf("got %d items / %d errors, want 3 / 1", len(got.Items), got.Errors)
	}
	for i, bi := range got.Items {
		if bi.Index != i {
			t.Errorf("item %d carries index %d — buffered mode must be request order", i, bi.Index)
		}
	}
	if bi := got.Items[0]; bi.Code != http.StatusOK || bi.Result == nil || bi.Result.Name != "good-a" {
		t.Errorf("item 0: code %d result %+v", bi.Code, bi.Result)
	}
	if bi := got.Items[1]; bi.Code != http.StatusBadRequest || bi.Error == nil || bi.Result != nil {
		t.Errorf("bad item: code %d error %+v result %+v, want item-level 400", bi.Code, bi.Error, bi.Result)
	}
	// Item 0 had no machine spec: the batch default (4 clusters) applies.
	// Item 2 named its own and must keep it.
	if m := got.Items[0].Result.Machine; got.Items[2].Result.Machine == m {
		t.Errorf("default and explicit machine collapsed to %q", m)
	}

	// The same batch again: every good item must now be a memory-tier hit.
	var again BatchResponse
	if code := postBatch(t, ts.URL, req, &again); code != http.StatusOK {
		t.Fatalf("second batch status %d", code)
	}
	for _, bi := range again.Items {
		if bi.Result == nil {
			continue
		}
		if !bi.Result.CacheHit || bi.Result.CacheTier != "memory" {
			t.Errorf("repeat item %d: cache_hit=%v tier=%q, want memory-tier hit",
				bi.Index, bi.Result.CacheHit, bi.Result.CacheTier)
		}
	}
}

// TestBatchStreaming exercises the NDJSON mode: one BatchItem per line,
// flushed in completion order, every index represented exactly once, and
// results identical to what the single endpoint would return.
func TestBatchStreaming(t *testing.T) {
	s := New(Config{Pipeline: codegen.Config{Cache: cache.New()}})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const n = 6
	req := &BatchRequest{RequestDefaults: RequestDefaults{Machine: MachineSpec{Clusters: 4}}}
	for i := 0; i < n; i++ {
		req.Items = append(req.Items, CompileRequest{Source: dotSource(1 + i%3)})
	}
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/compile/batch?stream=1", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != ndjsonContentType {
		t.Fatalf("content type %q, want %q", ct, ndjsonContentType)
	}
	seen := make(map[int]bool)
	dec := json.NewDecoder(resp.Body)
	for {
		var bi BatchItem
		if err := dec.Decode(&bi); err == io.EOF {
			break
		} else if err != nil {
			t.Fatalf("decoding stream line: %v", err)
		}
		if seen[bi.Index] {
			t.Fatalf("index %d streamed twice", bi.Index)
		}
		seen[bi.Index] = true
		if bi.Code != http.StatusOK || bi.Result == nil {
			t.Fatalf("index %d: code %d", bi.Index, bi.Code)
		}
	}
	if len(seen) != n {
		t.Fatalf("stream delivered %d items, want %d", len(seen), n)
	}
}

// TestBatchItemDeadline pins the per-item deadline semantics: a 1ms item
// deadline on a heavyweight loop fails that item with the single
// endpoint's 504 convention while its batchmates, under the server
// default deadline, still compile.
func TestBatchItemDeadline(t *testing.T) {
	s := New(Config{Pipeline: codegen.Config{}})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	req := &BatchRequest{
		RequestDefaults: RequestDefaults{Machine: MachineSpec{Clusters: 4}},
		Items: []CompileRequest{
			// Refinement multiplies the compile by ~a hundred trial
			// compiles, so 1ms cannot possibly cover it on any machine.
			{Name: "doomed", Source: dotSource(32), Refine: true, TimeoutMS: 1},
			{Name: "fine", Source: dotSource(2)},
		},
	}
	var got BatchResponse
	if code := postBatch(t, ts.URL, req, &got); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}
	if bi := got.Items[0]; bi.Code != http.StatusGatewayTimeout || bi.Error == nil {
		t.Errorf("deadline item: code %d error %+v, want 504", bi.Code, bi.Error)
	}
	if bi := got.Items[1]; bi.Code != http.StatusOK || bi.Result == nil {
		t.Errorf("patient item: code %d, want 200", bi.Code)
	}
}

// TestBatchRejectsOversizeAndEmpty pins the request-level 400s: no items,
// and more items than MaxBatchItems.
func TestBatchRejectsOversizeAndEmpty(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var er ErrorResponse
	if code := postBatch(t, ts.URL, &BatchRequest{}, &er); code != http.StatusBadRequest {
		t.Errorf("empty batch: status %d, want 400", code)
	}
	big := &BatchRequest{Items: make([]CompileRequest, MaxBatchItems+1)}
	if code := postBatch(t, ts.URL, big, &er); code != http.StatusBadRequest {
		t.Errorf("oversize batch: status %d, want 400", code)
	}
}

// TestSoakBatchDisk is TestSoakBoundedCache's persistent-tier sibling,
// run under -race in CI's soak step. Generation one warms a disk
// directory through batch traffic and shuts down; generation two reopens
// the same directory behind a cold memory cache and serves concurrent
// /compile/batch (buffered and streaming) plus single /compile traffic.
// It proves the serving properties the tier exists for:
//
//   - the restarted process draws nonzero disk-tier hits — warmth
//     survived the restart;
//   - disk bytes stay at or under the configured budget, and no record
//     ever fails verification under concurrent access;
//   - after both generations drain, no goroutine outlives its server or
//     disk tier.
func TestSoakBatchDisk(t *testing.T) {
	before := runtime.NumGoroutine()
	dir := t.TempDir()
	const diskBudget = int64(1 << 20)

	loops := loopgen.Generate(loopgen.Params{N: 24, Seed: loopgen.DefaultParams().Seed})
	sources := make([]string, len(loops))
	for i, l := range loops {
		sources[i] = l.Body.String()
	}
	newGen := func() (*cache.Cache, *cache.Disk, *Server, *httptest.Server) {
		d, err := cache.OpenDisk(dir, diskBudget)
		if err != nil {
			t.Fatal(err)
		}
		c := cache.New()
		s := New(Config{
			QueueDepth: 64,
			Pipeline:   codegen.Config{Cache: c, Disk: d, SkipAlloc: true},
		})
		return c, d, s, httptest.NewServer(s.Handler())
	}
	batchOf := func(rng *rand.Rand, size int) *BatchRequest {
		req := &BatchRequest{RequestDefaults: RequestDefaults{Machine: MachineSpec{Clusters: 4}}}
		for i := 0; i < size; i++ {
			idx := rng.Intn(len(sources))
			req.Items = append(req.Items, CompileRequest{
				Name:    fmt.Sprintf("soak-%d", idx),
				Source:  sources[idx],
				Machine: MachineSpec{Clusters: 2 << uint(i%3)},
			})
		}
		return req
	}

	// Generation one: push every (loop, machine) combination through the
	// batch endpoint so the write-behind populates the directory, then
	// shut down cleanly (Close flushes the queue).
	c1, d1, s1, ts1 := newGen()
	rng := rand.New(rand.NewSource(0xBA7C4))
	for i := 0; i < 6; i++ {
		var resp BatchResponse
		if code := postBatch(t, ts1.URL, batchOf(rng, 12), &resp); code != http.StatusOK {
			t.Fatalf("warm-up batch %d: status %d", i, code)
		}
		if resp.Errors != 0 {
			t.Fatalf("warm-up batch %d: %d item errors", i, resp.Errors)
		}
	}
	ts1.Close()
	s1.Close()
	d1.Close()
	if w := d1.Stats().Writes; w == 0 {
		t.Fatal("generation one wrote nothing to the disk tier")
	}
	if st := c1.Stats(); st.Misses == 0 {
		t.Fatalf("generation one compiled nothing: %s", st)
	}

	// Generation two: cold memory, warm disk, mixed concurrent traffic.
	c2, d2, s2, ts2 := newGen()
	iters := 8
	if raceDelayFactor > 1 {
		iters = 3
	}
	var wg sync.WaitGroup
	for g := 0; g < 2; g++ {
		wg.Add(2)
		// One batch client per pair, buffered or streaming.
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(0xBEEF ^ g)))
			for i := 0; i < iters; i++ {
				req := batchOf(rng, 8)
				body, err := json.Marshal(req)
				if err != nil {
					t.Errorf("batch client %d: %v", g, err)
					return
				}
				url := ts2.URL + "/compile/batch"
				if g%2 == 1 {
					url += "?stream=1"
				}
				resp, err := http.Post(url, "application/json", bytes.NewReader(body))
				if err != nil {
					t.Errorf("batch client %d: %v", g, err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("batch client %d: status %d", g, resp.StatusCode)
					return
				}
			}
		}(g)
		// One single-compile client per pair, sharing the same tiers.
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(0xF00D ^ g)))
			for i := 0; i < iters*6; i++ {
				idx := rng.Intn(len(sources))
				body, _ := json.Marshal(&CompileRequest{
					Name:    fmt.Sprintf("soak-%d", idx),
					Source:  sources[idx],
					Machine: MachineSpec{Clusters: 4},
				})
				resp, err := http.Post(ts2.URL+"/compile", "application/json", bytes.NewReader(body))
				if err != nil {
					t.Errorf("single client %d: %v", g, err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("single client %d: status %d", g, resp.StatusCode)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	st := c2.Stats()
	ds := d2.Stats()
	t.Logf("generation two: cache %s", st)
	if st.DiskHits == 0 {
		t.Error("restarted server drew zero disk-tier hits — warmth did not survive the restart")
	}
	if ds.Bytes > diskBudget {
		t.Errorf("disk tier sits at %d bytes, over the %d budget", ds.Bytes, diskBudget)
	}
	if ds.VerifyFailures != 0 {
		t.Errorf("%d records failed verification under clean concurrent traffic", ds.VerifyFailures)
	}

	ts2.Close()
	s2.Close()
	d2.Close()

	// Both generations are down; nothing of theirs may still be running.
	http.DefaultClient.CloseIdleConnections()
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if now := runtime.NumGoroutine(); now > before {
		t.Errorf("goroutines leaked: %d before, %d after drain", before, now)
	}
}
