package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/codegen"
	"repro/internal/ir"
	"repro/internal/scratch"
	"repro/internal/wire"
)

// Config tunes the daemon. The zero value is serviceable: GOMAXPROCS
// workers, a 2x queue, a 30-second default deadline and no instrumentation.
type Config struct {
	// Workers caps concurrent compilations; <=0 uses GOMAXPROCS.
	Workers int
	// QueueDepth bounds the waiting line; <=0 uses 2x Workers. Beyond it
	// requests are shed with 429.
	QueueDepth int
	// DefaultTimeout applies when a request names none; <=0 means 30s.
	DefaultTimeout time.Duration
	// MaxTimeout caps request-supplied deadlines; <=0 means 5m.
	MaxTimeout time.Duration
	// Pipeline configures every compile (partitioner, cache, tracer...).
	// The per-request partitioner override is layered on top of it.
	Pipeline codegen.Config
	// Cluster, when non-nil, routes requests across a consistent-hash
	// ring of swpd replicas: keys this process does not own are proxied
	// to their ring owner so the fleet shares warm state (see
	// internal/cluster). Nil keeps the single-node behavior. Close
	// releases it.
	Cluster *cluster.Router
	// Log receives one line per finished request; nil disables.
	Log *log.Logger
}

// maxCompileBody bounds the single-compile request body for both codecs.
const maxCompileBody = 1 << 20

// legacyDeprecation is the RFC 9745 Deprecation timestamp the unversioned
// route aliases answer with: the date the /v1/ surface shipped.
var legacyDeprecation = fmt.Sprintf("@%d", time.Date(2026, time.August, 8, 0, 0, 0, 0, time.UTC).Unix())

// Server is the swpd HTTP service: a worker pool, its metrics, and the
// handlers. Create with New, mount via Handler, stop with Close.
type Server struct {
	cfg      Config
	pool     *pool
	metrics  *metrics
	mux      *http.ServeMux
	draining chan struct{}
	parses   parseCache
}

// parseCache memoizes ir.ParseLoop by exact (name, source) text, so the
// steady-state warm path — the same loop compiled again — skips the
// parser entirely. Safe to share: the pipeline treats a *ir.Loop as
// read-only (copy insertion works on a value copy of the loop and never
// mutates the source body), which the stage cache already relies on.
// Keys are the verbatim strings, so there is no collision risk; a flat
// cap bounds the memory and a full table is simply dropped — parsing is
// cheap enough that a rare cold sweep is invisible.
type parseCache struct {
	mu sync.Mutex
	m  map[string]*ir.Loop
}

// parseCacheCap bounds distinct (name, source) texts retained.
const parseCacheCap = 4096

func (pc *parseCache) parse(name, src string) (*ir.Loop, error) {
	key := name + "\x00" + src
	pc.mu.Lock()
	loop, ok := pc.m[key]
	pc.mu.Unlock()
	if ok {
		return loop, nil
	}
	loop, err := ir.ParseLoop(name, src)
	if err != nil {
		return nil, err
	}
	pc.mu.Lock()
	if pc.m == nil || len(pc.m) >= parseCacheCap {
		pc.m = make(map[string]*ir.Loop, 64)
	}
	pc.m[key] = loop
	pc.mu.Unlock()
	return loop, nil
}

// New builds a Server and starts its workers.
func New(cfg Config) *Server {
	if cfg.DefaultTimeout <= 0 {
		cfg.DefaultTimeout = 30 * time.Second
	}
	if cfg.MaxTimeout <= 0 {
		cfg.MaxTimeout = 5 * time.Minute
	}
	s := &Server{
		cfg:      cfg,
		pool:     newPool(cfg.Workers, cfg.QueueDepth),
		metrics:  newMetrics(time.Now()),
		mux:      http.NewServeMux(),
		draining: make(chan struct{}),
	}
	s.mux.HandleFunc("POST /v1/compile", s.compileHandler)
	s.mux.HandleFunc("POST /v1/compile/batch", s.batchHandler)
	// The unversioned routes alias their /v1/ twins bit for bit, plus a
	// Deprecation header so clients learn to move without breaking.
	s.mux.HandleFunc("POST /compile", deprecated("/v1/compile", s.compileHandler))
	s.mux.HandleFunc("POST /compile/batch", deprecated("/v1/compile/batch", s.batchHandler))
	s.mux.HandleFunc("GET /healthz", s.healthHandler)
	s.mux.HandleFunc("GET /metrics", s.metricsHandler)
	return s
}

// deprecated wraps a v1 handler for its legacy unversioned route: same
// behavior, same body, plus the RFC 9745 Deprecation header and a Link to
// the successor route.
func deprecated(successor string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Deprecation", legacyDeprecation)
		w.Header().Set("Link", fmt.Sprintf("<%s>; rel=\"successor-version\"", successor))
		h(w, r)
	}
}

// Handler returns the route table for an http.Server.
func (s *Server) Handler() http.Handler { return s.mux }

// Close drains the pool: intake stops, queued and in-flight compilations
// finish. Call after http.Server.Shutdown so no handler is still waiting.
func (s *Server) Close() {
	close(s.draining)
	s.pool.close()
	s.cfg.Cluster.Close()
}

// routed reports whether this request should consult the cluster router:
// routing is configured and the request has not already been routed by
// another node (the hop header breaks forwarding loops when two nodes
// disagree about ring membership).
func (s *Server) routed(r *http.Request) bool {
	return s.cfg.Cluster.Enabled() && r.Header.Get(cluster.HopHeader) == ""
}

// healthHandler reports liveness plus the load gauges a balancer wants.
func (s *Server) healthHandler(w http.ResponseWriter, _ *http.Request) {
	status := "ok"
	code := http.StatusOK
	select {
	case <-s.draining:
		status = "draining"
		code = http.StatusServiceUnavailable
	default:
	}
	writeJSON(w, code, map[string]any{
		"status":    status,
		"in_flight": s.pool.inFlight.Load(),
		"queued":    s.pool.queued.Load(),
	})
}

// negotiate resolves one request's codecs: the request format from
// Content-Type, the response format from Accept (defaulting to the
// request's own format, so a binary client gets binary back without an
// Accept header). A failure writes the 415 or 406 itself and reports
// ok=false. extra lists response-only types the endpoint can also
// produce; a match is returned through extraType.
func (s *Server) negotiate(w http.ResponseWriter, r *http.Request, extra ...string) (reqF, respF wire.Format, extraType string, ok bool) {
	reqF, ctErr := wire.ParseContentType(r.Header.Get("Content-Type"))
	respF, extraType, accErr := wire.NegotiateAccept(r.Header.Get("Accept"), reqF, extra...)
	switch {
	case ctErr != nil:
		writeResponse(w, http.StatusUnsupportedMediaType, &ErrorResponse{
			Error:     ctErr.Error(),
			Supported: wire.RequestTypes(),
		}, respF)
		return 0, 0, "", false
	case accErr != nil:
		writeResponse(w, http.StatusNotAcceptable, &ErrorResponse{
			Error:     accErr.Error(),
			Supported: wire.ResponseTypes(extra...),
		}, reqF)
		return 0, 0, "", false
	}
	return reqF, respF, extraType, true
}

// readBody drains the request body into a pooled buffer. The returned
// release func recycles it; the bytes are invalid afterwards.
func readBody(r *http.Request, limit int64) ([]byte, func(), error) {
	bp := wire.GetBuffer()
	buf := bytes.NewBuffer(*bp)
	_, err := io.Copy(buf, io.LimitReader(r.Body, limit))
	b := buf.Bytes()
	release := func() { *bp = b[:0]; wire.PutBuffer(bp) }
	if err != nil {
		release()
		return nil, nil, err
	}
	return b, release, nil
}

// compileHandler is the daemon's purpose: negotiate, decode, bound,
// enqueue, wait, encode. The compile runs on a pool worker under a
// context that dies with the client connection or the request deadline,
// whichever first.
func (s *Server) compileHandler(w http.ResponseWriter, r *http.Request) {
	started := time.Now()
	reqF, respF, _, ok := s.negotiate(w, r)
	if !ok {
		return
	}
	code, body := s.compile(r, reqF)
	writeResponse(w, code, body, respF)
	s.metrics.observe(code, time.Since(started))
	if s.cfg.Log != nil {
		s.cfg.Log.Printf("compile code=%d wire=%s dur=%s", code, respF, time.Since(started).Round(time.Microsecond))
	}
}

func (s *Server) compile(r *http.Request, f wire.Format) (int, any) {
	var defaults RequestDefaults
	if f == wire.FormatBinary {
		data, release, err := readBody(r, maxCompileBody)
		if err != nil {
			return http.StatusBadRequest, &ErrorResponse{Error: "reading request: " + err.Error()}
		}
		defer release()
		req := wire.GetCompileRequest()
		defer wire.PutCompileRequest(req)
		if err := wire.DecodeCompileRequest(data, req); err != nil {
			return http.StatusBadRequest, &ErrorResponse{Error: "decoding request: " + err.Error()}
		}
		defaults.Apply(req, "loop")
		return s.dispatch(r, req)
	}
	var req CompileRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, maxCompileBody)).Decode(&req); err != nil {
		return http.StatusBadRequest, &ErrorResponse{Error: "decoding request: " + err.Error()}
	}
	defaults.Apply(&req, "loop")
	return s.dispatch(r, &req)
}

// dispatch sends one decoded, defaulted request either to its ring owner
// (cluster mode, key owned elsewhere) or into the local worker pool. The
// remote reply is already decoded wire data, so the handler re-encodes
// it in the client's negotiated format — byte-identical to a local
// answer, which the cluster differential test pins.
func (s *Server) dispatch(r *http.Request, req *CompileRequest) (int, any) {
	if s.routed(r) {
		if out := s.cfg.Cluster.Compile(r.Context(), req); !out.Local {
			if out.Err != nil {
				return out.Code, out.Err
			}
			return out.Code, out.Resp
		}
	}
	return s.compileOne(r.Context(), req, s.pool.submit)
}

// compileOne runs one already-decoded compile request to completion:
// parse, bound, enqueue via submit, wait, build the response. It is the
// shared core of the single /v1/compile handler (non-blocking submit,
// full queue = 429) and each /v1/compile/batch item (blocking submitWait,
// full queue = backpressure). baseCtx is the connection context; the
// request deadline is layered on top here.
func (s *Server) compileOne(baseCtx context.Context, req *CompileRequest, submit func(*task) error) (int, any) {
	loop, err := s.parses.parse(req.Name, req.Source)
	if err != nil {
		return http.StatusBadRequest, &ErrorResponse{Error: err.Error()}
	}
	mcfg, err := req.Machine.Config()
	if err != nil {
		return http.StatusBadRequest, &ErrorResponse{Error: err.Error()}
	}
	part, err := pickPartitioner(req.Partitioner)
	if err != nil {
		return http.StatusBadRequest, &ErrorResponse{Error: err.Error()}
	}
	opt := s.cfg.Pipeline
	if part != nil {
		opt.Partitioner = part
	}

	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
		if timeout > s.cfg.MaxTimeout {
			timeout = s.cfg.MaxTimeout
		}
	}
	// baseCtx dies when the client disconnects; the deadline is layered
	// on top so whichever fires first cancels the compile.
	ctx, cancel := context.WithTimeout(baseCtx, timeout)
	defer cancel()

	var (
		res   *codegen.Result
		stats *codegen.RefineStats
		cerr  error
	)
	hitsBefore, diskBefore := int64(-1), int64(-1)
	if opt.Cache.Enabled() {
		cst := opt.Cache.Stats()
		hitsBefore, diskBefore = cst.Hits, cst.DiskHits
	}
	t := &task{ctx: ctx, done: make(chan struct{})}
	t.run = func(ctx context.Context, ar *scratch.Arena) {
		opt.Scratch = ar
		if req.Refine {
			res, stats, cerr = codegen.CompileRefined(ctx, loop, mcfg, opt)
		} else {
			res, cerr = codegen.Compile(ctx, loop, mcfg, opt)
		}
	}
	if err := submit(t); err != nil {
		if errors.Is(err, ErrQueueFull) {
			return http.StatusTooManyRequests, &ErrorResponse{Error: err.Error()}
		}
		// submitWait gave up because the item's context died while it
		// was waiting for queue space.
		return s.ctxFailure(err, "")
	}
	<-t.done

	if !t.ran {
		// The context died while the task was still queued.
		return s.ctxFailure(ctx.Err(), "")
	}
	if cerr != nil {
		if stage := codegen.Stage(cerr); stage != "" || isCtxErr(cerr) {
			return s.ctxFailure(cerr, codegen.Stage(cerr))
		}
		return http.StatusUnprocessableEntity, &ErrorResponse{Error: cerr.Error()}
	}
	resp, err := buildResponse(req, res, stats)
	if err != nil {
		return http.StatusUnprocessableEntity, &ErrorResponse{Error: err.Error()}
	}
	s.metrics.observeExact(res.Exact)
	s.metrics.observeAdaptive(res.Adaptive)
	if hitsBefore >= 0 {
		// Deltas over the shared counters: approximate under concurrency
		// (as CacheHit always was) but the tier label lets clients see
		// restart warmth — "disk" means at least one stage was restored
		// from the persistent tier rather than recomputed.
		cst := opt.Cache.Stats()
		resp.CacheHit = cst.Hits > hitsBefore || cst.DiskHits > diskBefore
		switch {
		case cst.DiskHits > diskBefore:
			resp.CacheTier = "disk"
		case cst.Hits > hitsBefore:
			resp.CacheTier = "memory"
		}
	}
	return http.StatusOK, resp
}

// ctxFailure maps a context failure to a status: deadline expiry is the
// gateway-timeout the client can act on; a vanished client gets 499 (the
// nginx convention) though nobody is reading it.
func (s *Server) ctxFailure(err error, stage string) (int, any) {
	resp := &ErrorResponse{Stage: stage}
	if err != nil {
		resp.Error = err.Error()
	} else {
		resp.Error = "request cancelled"
	}
	if errors.Is(err, context.DeadlineExceeded) {
		s.metrics.deadlineExpired.Add(1)
		if stage != "" {
			resp.Error = fmt.Sprintf("compile deadline exceeded at stage %s", stage)
		} else {
			resp.Error = "compile deadline exceeded while queued"
		}
		return http.StatusGatewayTimeout, resp
	}
	s.metrics.clientGone.Add(1)
	return 499, resp
}

func isCtxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}
