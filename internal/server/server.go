package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"time"

	"repro/internal/codegen"
	"repro/internal/ir"
	"repro/internal/scratch"
)

// Config tunes the daemon. The zero value is serviceable: GOMAXPROCS
// workers, a 2x queue, a 30-second default deadline and no instrumentation.
type Config struct {
	// Workers caps concurrent compilations; <=0 uses GOMAXPROCS.
	Workers int
	// QueueDepth bounds the waiting line; <=0 uses 2x Workers. Beyond it
	// requests are shed with 429.
	QueueDepth int
	// DefaultTimeout applies when a request names none; <=0 means 30s.
	DefaultTimeout time.Duration
	// MaxTimeout caps request-supplied deadlines; <=0 means 5m.
	MaxTimeout time.Duration
	// Pipeline configures every compile (partitioner, cache, tracer...).
	// The per-request partitioner override is layered on top of it.
	Pipeline codegen.Config
	// Log receives one line per finished request; nil disables.
	Log *log.Logger
}

// Server is the swpd HTTP service: a worker pool, its metrics, and the
// handlers. Create with New, mount via Handler, stop with Close.
type Server struct {
	cfg      Config
	pool     *pool
	metrics  *metrics
	mux      *http.ServeMux
	draining chan struct{}
}

// New builds a Server and starts its workers.
func New(cfg Config) *Server {
	if cfg.DefaultTimeout <= 0 {
		cfg.DefaultTimeout = 30 * time.Second
	}
	if cfg.MaxTimeout <= 0 {
		cfg.MaxTimeout = 5 * time.Minute
	}
	s := &Server{
		cfg:      cfg,
		pool:     newPool(cfg.Workers, cfg.QueueDepth),
		metrics:  newMetrics(time.Now()),
		mux:      http.NewServeMux(),
		draining: make(chan struct{}),
	}
	s.mux.HandleFunc("POST /compile", s.compileHandler)
	s.mux.HandleFunc("POST /compile/batch", s.batchHandler)
	s.mux.HandleFunc("GET /healthz", s.healthHandler)
	s.mux.HandleFunc("GET /metrics", s.metricsHandler)
	return s
}

// Handler returns the route table for an http.Server.
func (s *Server) Handler() http.Handler { return s.mux }

// Close drains the pool: intake stops, queued and in-flight compilations
// finish. Call after http.Server.Shutdown so no handler is still waiting.
func (s *Server) Close() {
	close(s.draining)
	s.pool.close()
}

// healthHandler reports liveness plus the load gauges a balancer wants.
func (s *Server) healthHandler(w http.ResponseWriter, _ *http.Request) {
	status := "ok"
	code := http.StatusOK
	select {
	case <-s.draining:
		status = "draining"
		code = http.StatusServiceUnavailable
	default:
	}
	writeJSON(w, code, map[string]any{
		"status":    status,
		"in_flight": s.pool.inFlight.Load(),
		"queued":    s.pool.queued.Load(),
	})
}

// compileHandler is the daemon's purpose: decode, bound, enqueue, wait,
// encode. The compile runs on a pool worker under a context that dies
// with the client connection or the request deadline, whichever first.
func (s *Server) compileHandler(w http.ResponseWriter, r *http.Request) {
	started := time.Now()
	code, body := s.compile(r)
	writeJSON(w, code, body)
	s.metrics.observe(code, time.Since(started))
	if s.cfg.Log != nil {
		s.cfg.Log.Printf("compile code=%d dur=%s", code, time.Since(started).Round(time.Microsecond))
	}
}

func (s *Server) compile(r *http.Request) (int, any) {
	var req CompileRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&req); err != nil {
		return http.StatusBadRequest, &ErrorResponse{Error: "decoding request: " + err.Error()}
	}
	if req.Name == "" {
		req.Name = "loop"
	}
	return s.compileOne(r.Context(), &req, s.pool.submit)
}

// compileOne runs one already-decoded compile request to completion:
// parse, bound, enqueue via submit, wait, build the response. It is the
// shared core of the single /compile handler (non-blocking submit, full
// queue = 429) and each /compile/batch item (blocking submitWait, full
// queue = backpressure). baseCtx is the connection context; the request
// deadline is layered on top here.
func (s *Server) compileOne(baseCtx context.Context, req *CompileRequest, submit func(*task) error) (int, any) {
	loop, err := ir.ParseLoop(req.Name, req.Source)
	if err != nil {
		return http.StatusBadRequest, &ErrorResponse{Error: err.Error()}
	}
	mcfg, err := req.Machine.Config()
	if err != nil {
		return http.StatusBadRequest, &ErrorResponse{Error: err.Error()}
	}
	part, err := pickPartitioner(req.Partitioner)
	if err != nil {
		return http.StatusBadRequest, &ErrorResponse{Error: err.Error()}
	}
	opt := s.cfg.Pipeline
	if part != nil {
		opt.Partitioner = part
	}

	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
		if timeout > s.cfg.MaxTimeout {
			timeout = s.cfg.MaxTimeout
		}
	}
	// baseCtx dies when the client disconnects; the deadline is layered
	// on top so whichever fires first cancels the compile.
	ctx, cancel := context.WithTimeout(baseCtx, timeout)
	defer cancel()

	var (
		res   *codegen.Result
		stats *codegen.RefineStats
		cerr  error
	)
	hitsBefore, diskBefore := int64(-1), int64(-1)
	if opt.Cache.Enabled() {
		cst := opt.Cache.Stats()
		hitsBefore, diskBefore = cst.Hits, cst.DiskHits
	}
	t := &task{ctx: ctx, done: make(chan struct{})}
	t.run = func(ctx context.Context, ar *scratch.Arena) {
		opt.Scratch = ar
		if req.Refine {
			res, stats, cerr = codegen.CompileRefined(ctx, loop, mcfg, opt)
		} else {
			res, cerr = codegen.Compile(ctx, loop, mcfg, opt)
		}
	}
	if err := submit(t); err != nil {
		if errors.Is(err, ErrQueueFull) {
			return http.StatusTooManyRequests, &ErrorResponse{Error: err.Error()}
		}
		// submitWait gave up because the item's context died while it
		// was waiting for queue space.
		return s.ctxFailure(err, "")
	}
	<-t.done

	if !t.ran {
		// The context died while the task was still queued.
		return s.ctxFailure(ctx.Err(), "")
	}
	if cerr != nil {
		if stage := codegen.Stage(cerr); stage != "" || isCtxErr(cerr) {
			return s.ctxFailure(cerr, codegen.Stage(cerr))
		}
		return http.StatusUnprocessableEntity, &ErrorResponse{Error: cerr.Error()}
	}
	resp, err := buildResponse(req, res, stats)
	if err != nil {
		return http.StatusUnprocessableEntity, &ErrorResponse{Error: err.Error()}
	}
	s.metrics.observeExact(res.Exact)
	if hitsBefore >= 0 {
		// Deltas over the shared counters: approximate under concurrency
		// (as CacheHit always was) but the tier label lets clients see
		// restart warmth — "disk" means at least one stage was restored
		// from the persistent tier rather than recomputed.
		cst := opt.Cache.Stats()
		resp.CacheHit = cst.Hits > hitsBefore || cst.DiskHits > diskBefore
		switch {
		case cst.DiskHits > diskBefore:
			resp.CacheTier = "disk"
		case cst.Hits > hitsBefore:
			resp.CacheTier = "memory"
		}
	}
	return http.StatusOK, resp
}

// ctxFailure maps a context failure to a status: deadline expiry is the
// gateway-timeout the client can act on; a vanished client gets 499 (the
// nginx convention) though nobody is reading it.
func (s *Server) ctxFailure(err error, stage string) (int, any) {
	resp := &ErrorResponse{Stage: stage}
	if err != nil {
		resp.Error = err.Error()
	} else {
		resp.Error = "request cancelled"
	}
	if errors.Is(err, context.DeadlineExceeded) {
		s.metrics.deadlineExpired.Add(1)
		if stage != "" {
			resp.Error = fmt.Sprintf("compile deadline exceeded at stage %s", stage)
		} else {
			resp.Error = "compile deadline exceeded while queued"
		}
		return http.StatusGatewayTimeout, resp
	}
	s.metrics.clientGone.Add(1)
	return 499, resp
}

func isCtxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}
