package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/cache"
	"repro/internal/cluster"
	"repro/internal/codegen"
	"repro/internal/loopgen"
	"repro/internal/trace"
	"repro/internal/wire"
)

// newReplica spins up one standalone swpd replica with its own caches —
// exactly what each fleet member runs in production.
func newReplica(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	s := New(Config{Pipeline: codegen.Config{Cache: cache.New(), Tracer: trace.New()}})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })
	return s, ts
}

// newGateway fronts the replicas with a pure routing gateway (Self="").
func newGateway(t *testing.T, replicas ...string) (*Server, *httptest.Server, *cluster.Router) {
	t.Helper()
	rt := cluster.NewRouter(cluster.Config{Peers: replicas})
	s := New(Config{Workers: 1, QueueDepth: 1, Cluster: rt})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })
	return s, ts, rt
}

// clusterSuite returns a deterministic spread of compile requests that a
// two-replica ring splits across both members. Requests are deduplicated
// by route key so every entry is a structurally distinct compile (two
// generated loops can share a body, which would alias their cache
// fingerprints and muddy warm/cold accounting).
func clusterSuite(n int) []wire.CompileRequest {
	loops := loopgen.Generate(loopgen.Params{N: 3 * n, Seed: loopgen.DefaultParams().Seed})
	reqs := make([]wire.CompileRequest, 0, n)
	seen := map[uint64]bool{}
	for i, l := range loops {
		req := wire.CompileRequest{
			Name:    l.Name,
			Source:  l.Body.String(),
			Machine: wire.MachineSpec{Clusters: 4, CopyModel: "copyunit"},
		}
		if i%3 == 1 {
			req.Machine = wire.MachineSpec{Clusters: 2, CopyModel: "embedded"}
		}
		// A distinct trip expansion per kept request keeps every entry
		// structurally unique even when two generated loops canonicalize
		// to the same body (which would legitimately share cache state).
		req.ExpandTrip = 16 + len(reqs)
		if k := cluster.RouteKey(&req); !seen[k] {
			seen[k] = true
			reqs = append(reqs, req)
		}
		if len(reqs) == n {
			break
		}
	}
	return reqs
}

// normalize zeroes the only fields allowed to differ between a routed and
// a single-node compile: which cache tier answered. Everything else —
// schedule, IIs, assignments, copies — must match byte for byte.
func normalize(r *wire.CompileResponse) *wire.CompileResponse {
	r.CacheHit = false
	r.CacheTier = ""
	return r
}

func mustJSON(t *testing.T, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestClusterDifferential pins the acceptance criterion: a compile routed
// through the gateway is byte-identical to the same compile on a single
// node, for every loop in a mixed-config suite.
func TestClusterDifferential(t *testing.T) {
	_, solo := newReplica(t)
	_, ra := newReplica(t)
	_, rb := newReplica(t)
	_, gw, rt := newGateway(t, ra.URL, rb.URL)

	post := func(base string, req *wire.CompileRequest) *wire.CompileResponse {
		t.Helper()
		resp, err := http.Post(base+"/v1/compile", wire.ContentTypeJSON,
			bytes.NewReader(mustJSON(t, req)))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d for %s", base, resp.StatusCode, req.Name)
		}
		var out wire.CompileResponse
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return &out
	}

	suite := clusterSuite(10)
	for i := range suite {
		req := &suite[i]
		want := mustJSON(t, normalize(post(solo.URL, req)))
		got := mustJSON(t, normalize(post(gw.URL, req)))
		if !bytes.Equal(want, got) {
			t.Errorf("%s: routed output differs from single-node\n solo: %s\n ring: %s",
				req.Name, want, got)
		}
	}

	st := rt.Stats()
	if st.Peers[ra.URL].Requests == 0 || st.Peers[rb.URL].Requests == 0 {
		t.Errorf("suite did not split across both replicas: %+v", st.Peers)
	}
	if st.Errors != 0 || st.Failovers != 0 {
		t.Errorf("unexpected routing trouble: %+v", st)
	}
}

// TestClusterWarmSharing pins the point of fingerprint routing: the same
// request re-posted through the gateway lands on the same replica and
// answers from its cache.
func TestClusterWarmSharing(t *testing.T) {
	_, ra := newReplica(t)
	_, rb := newReplica(t)
	_, gw, _ := newGateway(t, ra.URL, rb.URL)

	suite := clusterSuite(8)
	run := func() (hits int) {
		for i := range suite {
			resp, err := http.Post(gw.URL+"/v1/compile", wire.ContentTypeJSON,
				bytes.NewReader(mustJSON(t, &suite[i])))
			if err != nil {
				t.Fatal(err)
			}
			var out wire.CompileResponse
			if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("status %d", resp.StatusCode)
			}
			if out.CacheHit {
				hits++
			}
		}
		return hits
	}
	// A few cold hits are legitimate — CacheHit reports any stage-cache
	// delta, and distinct loops can share a stage entry — but the warm
	// pass must hit on every request: fingerprint routing lands each
	// repeat on the replica that already owns its state.
	cold := run()
	warm := run()
	if warm != len(suite) {
		t.Errorf("warm pass hit %d/%d — routing is not sticky per fingerprint", warm, len(suite))
	}
	if cold >= warm {
		t.Errorf("cold pass hit %d of %d, as much as the warm pass — accounting is broken", cold, len(suite))
	}
}

// TestClusterBatchOrder pins the batch split/merge: a mixed-owner batch
// through the gateway returns items in request order, each identical to
// its single-node answer.
func TestClusterBatchOrder(t *testing.T) {
	_, solo := newReplica(t)
	_, ra := newReplica(t)
	_, rb := newReplica(t)
	_, gw, _ := newGateway(t, ra.URL, rb.URL)

	breq := wire.BatchRequest{Items: clusterSuite(9)}
	post := func(base string) *wire.BatchResponse {
		t.Helper()
		resp, err := http.Post(base+"/v1/compile/batch", wire.ContentTypeJSON,
			bytes.NewReader(mustJSON(t, &breq)))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: batch status %d", base, resp.StatusCode)
		}
		var out wire.BatchResponse
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return &out
	}

	want, got := post(solo.URL), post(gw.URL)
	if len(got.Items) != len(breq.Items) || got.Errors != 0 {
		t.Fatalf("gateway batch: %d items, %d errors", len(got.Items), got.Errors)
	}
	for i, bi := range got.Items {
		if bi.Index != i {
			t.Fatalf("item %d carries index %d — merge lost request order", i, bi.Index)
		}
		if bi.Result == nil {
			t.Fatalf("item %d: no result (code %d)", i, bi.Code)
		}
		w := mustJSON(t, normalize(want.Items[i].Result))
		g := mustJSON(t, normalize(bi.Result))
		if !bytes.Equal(w, g) {
			t.Errorf("batch item %d differs from single-node\n solo: %s\n ring: %s", i, w, g)
		}
	}
}

// TestClusterBatchStream pins the NDJSON mode through the gateway: one
// line per item, every index served exactly once.
func TestClusterBatchStream(t *testing.T) {
	_, ra := newReplica(t)
	_, rb := newReplica(t)
	_, gw, _ := newGateway(t, ra.URL, rb.URL)

	breq := wire.BatchRequest{Items: clusterSuite(6)}
	resp, err := http.Post(gw.URL+"/v1/compile/batch?stream=1", wire.ContentTypeJSON,
		bytes.NewReader(mustJSON(t, &breq)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != wire.ContentTypeNDJSON {
		t.Fatalf("content type %q", ct)
	}
	seen := map[int]bool{}
	dec := json.NewDecoder(resp.Body)
	for dec.More() {
		var bi wire.BatchItem
		if err := dec.Decode(&bi); err != nil {
			t.Fatal(err)
		}
		if seen[bi.Index] {
			t.Fatalf("index %d streamed twice", bi.Index)
		}
		seen[bi.Index] = true
		if bi.Result == nil {
			t.Errorf("index %d: no result (code %d)", bi.Index, bi.Code)
		}
	}
	if len(seen) != len(breq.Items) {
		t.Fatalf("streamed %d items, want %d", len(seen), len(breq.Items))
	}
}

// TestClusterHopNoLoop pins the loop-prevention contract: a request that
// already took its routing hop compiles wherever it lands, even when this
// replica's ring disagrees about the owner.
func TestClusterHopNoLoop(t *testing.T) {
	var hits atomic.Int64
	other := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		http.Error(w, "must never be reached", http.StatusTeapot)
	}))
	defer other.Close()

	self := "http://replica-self.invalid:1"
	rt := cluster.NewRouter(cluster.Config{Peers: []string{self, other.URL}, Self: self})
	s := New(Config{Pipeline: codegen.Config{Cache: cache.New(), Tracer: trace.New()}, Cluster: rt})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Close()

	// Find a request the ring assigns to the other peer, so forwarding
	// would be the default without the hop header.
	var req *wire.CompileRequest
	for _, cand := range clusterSuite(40) {
		if rt.OwnerOf(&cand) == other.URL {
			req = &cand
			break
		}
	}
	if req == nil {
		t.Fatal("no request found owned by the other peer")
	}

	hreq, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/compile",
		bytes.NewReader(mustJSON(t, req)))
	hreq.Header.Set("Content-Type", wire.ContentTypeJSON)
	hreq.Header.Set(cluster.HopHeader, "1")
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("hopped request not compiled locally: status %d", resp.StatusCode)
	}
	if hits.Load() != 0 {
		t.Fatalf("hopped request was forwarded again (%d hits) — routing loop", hits.Load())
	}
}

// TestClusterMetricsExposed pins the swpd_cluster_* surface on a routing
// node's /metrics.
func TestClusterMetricsExposed(t *testing.T) {
	_, ra := newReplica(t)
	_, gw, _ := newGateway(t, ra.URL)

	req := &clusterSuite(1)[0]
	if resp, err := http.Post(gw.URL+"/v1/compile", wire.ContentTypeJSON,
		bytes.NewReader(mustJSON(t, req))); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
	}

	resp, err := http.Get(gw.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body := readAll(t, resp)
	for _, name := range []string{
		"swpd_cluster_local_total",
		"swpd_cluster_remote_total 1",
		"swpd_cluster_failovers_total",
		"swpd_cluster_errors_total",
		"swpd_cluster_peer_requests_total",
		"swpd_cluster_peer_healthy",
	} {
		if !strings.Contains(body, name) {
			t.Errorf("metrics missing %q", name)
		}
	}
}

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}
