package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/cache"
	"repro/internal/codegen"
	"repro/internal/fixtures"
	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/scratch"
	"repro/internal/trace"
)

// postJSON fires one /compile request and decodes the response into out.
func postJSON(t *testing.T, url string, req *CompileRequest, out any) int {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/compile", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %d response: %v", resp.StatusCode, err)
		}
	}
	return resp.StatusCode
}

// dotSource serializes the unrolled dot product through the printer so the
// request exercises the same ParseLoop grammar real clients use.
func dotSource(u int) string { return fixtures.DotProduct(u).Body.String() }

func TestCompileRoundTrip(t *testing.T) {
	s := New(Config{Pipeline: codegen.Config{Cache: cache.New(), Tracer: trace.New()}})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	req := &CompileRequest{
		Name:       "dot",
		Source:     dotSource(2),
		Machine:    MachineSpec{Clusters: 4, CopyModel: "embedded"},
		ExpandTrip: 8,
	}
	var got CompileResponse
	if code := postJSON(t, ts.URL, req, &got); code != http.StatusOK {
		t.Fatalf("status %d", code)
	}

	// The service must agree exactly with a direct in-process compile.
	loop, err := ir.ParseLoop("dot", req.Source)
	if err != nil {
		t.Fatal(err)
	}
	want, err := codegen.Compile(context.Background(), loop,
		machine.MustClustered16(4, machine.Embedded), codegen.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got.IdealII != want.IdealII() || got.PartII != want.PartII() {
		t.Errorf("II mismatch: got %d/%d, want %d/%d",
			got.IdealII, got.PartII, want.IdealII(), want.PartII())
	}
	if got.Degradation != want.Degradation() {
		t.Errorf("degradation %v, want %v", got.Degradation, want.Degradation())
	}
	if got.KernelCopies != want.Copies.KernelCopies {
		t.Errorf("copies %d, want %d", got.KernelCopies, want.Copies.KernelCopies)
	}
	if len(got.Schedule) != len(want.Copies.Body.Ops) {
		t.Errorf("schedule has %d rows, want %d", len(got.Schedule), len(want.Copies.Body.Ops))
	}
	if got.Expansion == nil || got.Expansion.Trip != 8 || got.Expansion.TotalCycles == 0 {
		t.Errorf("expansion missing or malformed: %+v", got.Expansion)
	}
	if got.Machine != want.Cfg.Name || got.Partitioner != "rcg-greedy" {
		t.Errorf("labels wrong: %q %q", got.Machine, got.Partitioner)
	}

	// An identical request is answered from the compile cache.
	var again CompileResponse
	if code := postJSON(t, ts.URL, req, &again); code != http.StatusOK {
		t.Fatalf("second status %d", code)
	}
	if !again.CacheHit {
		t.Error("second identical request did not hit the cache")
	}
	if again.PartII != got.PartII || again.Degradation != got.Degradation {
		t.Error("cached answer differs from the computed one")
	}
}

func TestCompileBadRequests(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cases := []*CompileRequest{
		{Source: "not an opcode r1"},
		{Source: dotSource(1), Machine: MachineSpec{Clusters: 3}},
		{Source: dotSource(1), Machine: MachineSpec{Clusters: 4, CopyModel: "teleport"}},
		{Source: dotSource(1), Partitioner: "astrology"},
	}
	for i, req := range cases {
		var er ErrorResponse
		if code := postJSON(t, ts.URL, req, &er); code != http.StatusBadRequest {
			t.Errorf("case %d: status %d, want 400", i, code)
		}
		if er.Error == "" {
			t.Errorf("case %d: empty error body", i)
		}
	}
}

// TestDeadlineReturns504 is the issue's acceptance scenario: a 1ms
// deadline on a large unrolled loop must come back promptly as a 504
// naming the pipeline stage, and the pool must stay healthy afterwards.
func TestDeadlineReturns504(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var er ErrorResponse
	start := time.Now()
	code := postJSON(t, ts.URL, &CompileRequest{
		Name:      "huge",
		// ~400ms of scheduling. The fixture must compile much slower than
		// the worst-case timer lateness (~20ms on coarse container clocks),
		// or the pipeline can finish before the tardy 1ms timer fires.
		Source:    dotSource(2048),
		Machine:   MachineSpec{Clusters: 8},
		TimeoutMS: 1,
	}, &er)
	elapsed := time.Since(start)
	if code != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504 (%+v)", code, er)
	}
	if bound := 100 * time.Millisecond * raceDelayFactor; elapsed > bound {
		t.Errorf("deadline response took %s, want <%s", elapsed, bound)
	}
	if er.Stage == "" {
		t.Errorf("504 did not name the stage reached: %+v", er)
	}
	if !strings.Contains(er.Error, "deadline") {
		t.Errorf("504 error does not mention the deadline: %q", er.Error)
	}

	// The worker that served the doomed request must be free again.
	var ok CompileResponse
	if code := postJSON(t, ts.URL, &CompileRequest{
		Source:  dotSource(2),
		Machine: MachineSpec{Clusters: 4},
	}, &ok); code != http.StatusOK {
		t.Fatalf("pool unhealthy after deadline: status %d", code)
	}
	if s.pool.inFlight.Load() != 0 || s.pool.queued.Load() != 0 {
		t.Errorf("pool gauges stuck: inFlight=%d queued=%d",
			s.pool.inFlight.Load(), s.pool.queued.Load())
	}
}

// blockPool parks n tasks in the pool and returns the channel that frees
// them, plus a helper that waits for a gauge to reach a value.
func waitFor(t *testing.T, what string, f func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !f() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestQueueFullReturns429(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 1})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	release := make(chan struct{})
	park := func() *task {
		tk := &task{ctx: context.Background(), done: make(chan struct{})}
		tk.run = func(context.Context, *scratch.Arena) { <-release }
		if err := s.pool.submit(tk); err != nil {
			t.Fatalf("parking task: %v", err)
		}
		return tk
	}
	park() // occupies the single worker
	waitFor(t, "worker busy", func() bool { return s.pool.inFlight.Load() == 1 })
	park() // fills the queue slot

	var er ErrorResponse
	code := postJSON(t, ts.URL, &CompileRequest{
		Source:  dotSource(2),
		Machine: MachineSpec{Clusters: 4},
	}, &er)
	if code != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", code)
	}
	if !strings.Contains(er.Error, "queue full") {
		t.Errorf("429 body does not explain: %q", er.Error)
	}

	close(release)
	waitFor(t, "pool to drain", func() bool {
		return s.pool.inFlight.Load() == 0 && s.pool.queued.Load() == 0
	})
	if code := postJSON(t, ts.URL, &CompileRequest{
		Source:  dotSource(2),
		Machine: MachineSpec{Clusters: 4},
	}, nil); code != http.StatusOK {
		t.Fatalf("pool unhealthy after shedding: status %d", code)
	}
}

// TestGracefulDrain pins the shutdown ordering: Close must wait for the
// queued request to compile and answer 200, never drop it.
func TestGracefulDrain(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	release := make(chan struct{})
	parked := &task{ctx: context.Background(), done: make(chan struct{})}
	parked.run = func(context.Context, *scratch.Arena) { <-release }
	if err := s.pool.submit(parked); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "worker busy", func() bool { return s.pool.inFlight.Load() == 1 })

	// A real request queues behind the parked task.
	reqDone := make(chan int, 1)
	go func() {
		reqDone <- postJSON(t, ts.URL, &CompileRequest{
			Source:  dotSource(2),
			Machine: MachineSpec{Clusters: 4},
		}, nil)
	}()
	waitFor(t, "request queued", func() bool { return s.pool.queued.Load() == 1 })

	closeDone := make(chan struct{})
	go func() {
		s.Close()
		close(closeDone)
	}()
	select {
	case <-closeDone:
		t.Fatal("Close returned while a request was still queued")
	case <-time.After(50 * time.Millisecond):
	}

	close(release)
	select {
	case code := <-reqDone:
		if code != http.StatusOK {
			t.Fatalf("drained request got status %d, want 200", code)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("queued request never finished")
	}
	select {
	case <-closeDone:
	case <-time.After(5 * time.Second):
		t.Fatal("Close never returned after the drain")
	}
	// After the drain, new work is shed instead of accepted.
	if err := s.pool.submit(&task{ctx: context.Background(), done: make(chan struct{})}); err != ErrQueueFull {
		t.Errorf("post-drain submit returned %v, want ErrQueueFull", err)
	}
}

func TestHealthAndMetrics(t *testing.T) {
	s := New(Config{Pipeline: codegen.Config{Cache: cache.New(), Tracer: trace.New()}})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Status string `json:"status"`
	}
	json.NewDecoder(resp.Body).Decode(&health)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || health.Status != "ok" {
		t.Fatalf("healthz: %d %q", resp.StatusCode, health.Status)
	}

	if code := postJSON(t, ts.URL, &CompileRequest{
		Source:  dotSource(2),
		Machine: MachineSpec{Clusters: 4},
	}, nil); code != http.StatusOK {
		t.Fatalf("compile status %d", code)
	}

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	resp.Body.Close()
	text := buf.String()
	for _, want := range []string{
		`swpd_requests_total{code="200"} 1`,
		"swpd_request_seconds_bucket",
		"swpd_request_seconds_count 1",
		"swpd_cache_misses_total",
		"swpd_stage_seconds_total",
		"swpd_queue_depth 0",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}

	// Draining flips health to 503.
	s.Close()
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("draining healthz status %d, want 503", resp.StatusCode)
	}
}
