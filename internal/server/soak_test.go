package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"regexp"
	"strconv"
	"sync"
	"testing"

	"repro/internal/cache"
	"repro/internal/codegen"
	"repro/internal/loopgen"
	"repro/internal/trace"
)

// soakRequests returns the traffic volume for the soak test: scaled down
// under the race detector (CI's dedicated soak step runs with -race) and
// overridable via SWPD_SOAK_REQUESTS for longer local runs.
func soakRequests() int {
	if s := os.Getenv("SWPD_SOAK_REQUESTS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	if raceDelayFactor > 1 {
		return 240 // the race detector makes each compile several times slower
	}
	return 600
}

// TestSoakBoundedCache drives sustained randomized loopgen traffic at a
// live daemon whose compile cache has a finite byte budget — the
// unbounded-uptime scenario the budget exists for. It proves the three
// steady-state properties the ROADMAP's serving story needs:
//
//   - resident cache bytes hold at or under the budget once traffic
//     quiesces (and never run away mid-flight);
//   - the hit rate stays nonzero — a bounded cache still caches;
//   - the budget actually binds — evictions happen — while every request
//     still compiles successfully.
//
// CI runs this under -race via its soak step (short iteration count);
// crank SWPD_SOAK_REQUESTS for a longer local soak.
func TestSoakBoundedCache(t *testing.T) {
	const budget = int64(192 << 10)
	c := cache.NewBounded(budget)
	s := New(Config{
		// Deep enough that 4 steady clients never trip load shedding.
		QueueDepth: 32,
		Pipeline: codegen.Config{
			Cache:       c,
			CacheBudget: budget,
			Tracer:      trace.New(),
			SkipAlloc:   true,
		},
	})
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// A pool of distinct loops much larger than the budget can hold at
	// once, sampled with a skew so some loops recur hot (hits) while the
	// long tail churns the eviction clock.
	loops := loopgen.Generate(loopgen.Params{N: 64, Seed: loopgen.DefaultParams().Seed})
	sources := make([]string, len(loops))
	for i, l := range loops {
		sources[i] = l.Body.String()
	}
	specs := []MachineSpec{
		{Clusters: 2, CopyModel: "embedded"},
		{Clusters: 4, CopyModel: "embedded"},
		{Clusters: 8, CopyModel: "copyunit"},
	}

	// postJSON calls t.Fatal, which is off-limits outside the test
	// goroutine; the soak clients post directly and report via Errorf.
	post := func(req *CompileRequest) (int, error) {
		body, err := json.Marshal(req)
		if err != nil {
			return 0, err
		}
		resp, err := http.Post(ts.URL+"/compile", "application/json", bytes.NewReader(body))
		if err != nil {
			return 0, err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode, nil
	}

	total := soakRequests()
	const clients = 4
	var wg sync.WaitGroup
	var overBudget int64
	var mu sync.Mutex
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(0x50AC ^ g)))
			for i := 0; i < total/clients; i++ {
				idx := rng.Intn(rng.Intn(len(sources)) + 1) // skewed: low indices run hot
				req := &CompileRequest{
					Name:    fmt.Sprintf("soak-%d", idx),
					Source:  sources[idx],
					Machine: specs[(g+i)%len(specs)],
				}
				code, err := post(req)
				if err != nil {
					t.Errorf("client %d request %d: %v", g, i, err)
					return
				}
				if code != http.StatusOK {
					t.Errorf("client %d request %d: status %d", g, i, code)
					return
				}
				// Mid-flight the cache may transiently exceed the budget by
				// what in-flight lookups pin; a run-away (2x) is a leak.
				if b := c.Stats().Bytes; b > 2*budget {
					mu.Lock()
					overBudget++
					mu.Unlock()
				}
			}
		}(g)
	}
	wg.Wait()

	st := c.Stats()
	t.Logf("soak: %d requests, cache %s (pinned %d, budget %d)", total, st, st.Pinned, budget)
	if st.Bytes > budget {
		t.Errorf("at rest the cache sits at %d bytes, over the %d budget", st.Bytes, budget)
	}
	if overBudget > 0 {
		t.Errorf("%d mid-flight samples saw resident bytes above twice the budget", overBudget)
	}
	if st.Hits == 0 {
		t.Error("soak traffic produced zero cache hits — the bounded cache stopped caching")
	}
	if st.Evictions == 0 {
		t.Error("soak traffic produced zero evictions — the budget never bound (shrink it or grow the loop pool)")
	}
	if st.Pinned != 0 {
		t.Errorf("%d entries still pinned after traffic quiesced", st.Pinned)
	}

	// The Prometheus surface must tell the same story.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	metrics := string(raw)
	for _, row := range []string{
		"swpd_cache_bytes", "swpd_cache_budget_bytes", "swpd_cache_evictions_total", "swpd_cache_pinned",
	} {
		if !regexp.MustCompile(`(?m)^` + row + ` `).MatchString(metrics) {
			t.Errorf("/metrics missing %s", row)
		}
	}
	m := regexp.MustCompile(`(?m)^swpd_cache_bytes (\d+)$`).FindStringSubmatch(metrics)
	if m == nil {
		t.Fatal("/metrics has no parsable swpd_cache_bytes row")
	}
	if got, _ := strconv.ParseInt(m[1], 10, 64); got > budget {
		t.Errorf("/metrics reports %d cache bytes, over the %d budget", got, budget)
	}
}
