// Package server implements swpd, the compile-as-a-service daemon: a
// long-running HTTP/JSON front end over the five-step pipeline. Requests
// carry a loop in the ir.ParseLoop assembly format plus a machine spec;
// responses carry the compiled outcome (II, degradation, copies, the
// clustered schedule and optionally the expanded prelude/kernel/postlude).
//
// The daemon exists because the pipeline is CPU-bound and bursty: a
// bounded worker pool keeps at most GOMAXPROCS compilations running, a
// bounded queue absorbs short bursts, and everything beyond that is shed
// with 429 so latency stays flat instead of collapsing. Each request runs
// under a context that merges the client connection (disconnect cancels
// the compile) with an optional per-request deadline (expiry returns 504
// naming the pipeline stage reached).
package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"

	"repro/internal/codegen"
	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/modulo"
	"repro/internal/partition"
)

// MachineSpec selects a target machine in a request.
type MachineSpec struct {
	// Clusters is 1 (the monolithic ideal) or one of the paper's cluster
	// counts 2, 4, 8.
	Clusters int `json:"clusters"`
	// CopyModel is "embedded" (default) or "copyunit"; ignored for the
	// monolithic machine.
	CopyModel string `json:"copy_model,omitempty"`
}

// Config builds the machine.Config the spec names.
func (ms MachineSpec) Config() (*machine.Config, error) {
	if ms.Clusters <= 1 {
		return machine.Ideal16(), nil
	}
	model := machine.Embedded
	switch strings.ToLower(ms.CopyModel) {
	case "", "embedded":
	case "copyunit", "copy_unit", "copy-unit":
		model = machine.CopyUnit
	default:
		return nil, fmt.Errorf("unknown copy model %q (want embedded or copyunit)", ms.CopyModel)
	}
	return machine.Clustered16(ms.Clusters, model)
}

// CompileRequest is the POST /compile body.
type CompileRequest struct {
	// Name labels the loop in responses and logs.
	Name string `json:"name"`
	// Source is the loop body in the ir.ParseLoop assembly format.
	Source string `json:"source"`
	// Machine selects the target; the zero value is the monolithic ideal.
	Machine MachineSpec `json:"machine"`
	// Partitioner optionally overrides the server's default method:
	// rcg, portfolio, bug, uas, roundrobin, random, single.
	Partitioner string `json:"partitioner,omitempty"`
	// Refine enables the iterative partition improvement loop.
	Refine bool `json:"refine,omitempty"`
	// ExpandTrip, when positive, additionally expands the clustered
	// schedule into prelude/kernel/postlude for that trip count.
	ExpandTrip int `json:"expand_trip,omitempty"`
	// TimeoutMS caps this request's compile time in milliseconds; 0 uses
	// the server default.
	TimeoutMS int `json:"timeout_ms,omitempty"`
}

// ScheduledOp is one operation of the clustered kernel schedule.
type ScheduledOp struct {
	Op      string `json:"op"`
	Cycle   int    `json:"cycle"`
	Row     int    `json:"row"`
	Stage   int    `json:"stage"`
	Cluster int    `json:"cluster"`
}

// RefineReport echoes codegen.RefineStats.
type RefineReport struct {
	Rounds     int `json:"rounds"`
	MovesTried int `json:"moves_tried"`
	MovesKept  int `json:"moves_kept"`
	StartII    int `json:"start_ii"`
	FinalII    int `json:"final_ii"`
}

// ExpansionReport is the flattened pipeline: rows of rendered instances.
type ExpansionReport struct {
	II          int        `json:"ii"`
	Stages      int        `json:"stages"`
	Trip        int        `json:"trip"`
	KernelReps  int        `json:"kernel_reps"`
	TotalCycles int        `json:"total_cycles"`
	Prelude     [][]string `json:"prelude"`
	Kernel      [][]string `json:"kernel"`
	Postlude    [][]string `json:"postlude"`
}

// ExactGapReport echoes codegen.ExactReport: the optimality-gap telemetry
// when the server runs with the exact-solver arms enabled.
type ExactGapReport struct {
	MinII         int   `json:"min_ii"`
	HeuristicII   int   `json:"heuristic_ii"`
	FinalII       int   `json:"final_ii"`
	SchedRan      bool  `json:"sched_ran"`
	SchedProven   bool  `json:"sched_proven"`
	SchedImproved bool  `json:"sched_improved"`
	SchedNodes    int64 `json:"sched_nodes"`
	PartRan       bool  `json:"part_ran"`
	PartProven    bool  `json:"part_proven"`
	PartImproved  bool  `json:"part_improved"`
	PartWon       bool  `json:"part_won"`
	PartNodes     int64 `json:"part_nodes"`
}

// CompileResponse is the POST /compile success body.
type CompileResponse struct {
	Name             string           `json:"name"`
	Machine          string           `json:"machine"`
	Partitioner      string           `json:"partitioner"`
	PortfolioVariant string           `json:"portfolio_variant,omitempty"`
	IdealII          int              `json:"ideal_ii"`
	PartII           int              `json:"part_ii"`
	Degradation      float64          `json:"degradation"`
	KernelCopies     int              `json:"kernel_copies"`
	Spills           int              `json:"spills"`
	CacheHit         bool             `json:"cache_hit,omitempty"`
	CacheTier        string           `json:"cache_tier,omitempty"`
	Schedule         []ScheduledOp    `json:"schedule"`
	Refine           *RefineReport    `json:"refine,omitempty"`
	Exact            *ExactGapReport  `json:"exact,omitempty"`
	Expansion        *ExpansionReport `json:"expansion,omitempty"`
}

// BatchRequest is the POST /compile/batch body: many loops in one
// request, decoded in a single pass. The top-level fields are defaults
// an item inherits when it leaves the corresponding field zero.
type BatchRequest struct {
	// Machine is the default target for items whose own spec is zero.
	Machine MachineSpec `json:"machine,omitempty"`
	// Partitioner is the default method for items that name none.
	Partitioner string `json:"partitioner,omitempty"`
	// TimeoutMS is the default per-item compile deadline; each item runs
	// under its own deadline, so one slow loop cannot consume the whole
	// batch's time. 0 uses the server default, and the server's
	// -max-timeout cap applies per item.
	TimeoutMS int `json:"timeout_ms,omitempty"`
	// Items are the loops to compile, at most MaxBatchItems of them.
	Items []CompileRequest `json:"items"`
}

// applyDefaults folds the batch-level defaults into one item.
func (b *BatchRequest) applyDefaults(item *CompileRequest, idx int) {
	if item.Name == "" {
		item.Name = fmt.Sprintf("loop%d", idx)
	}
	if item.Machine == (MachineSpec{}) {
		item.Machine = b.Machine
	}
	if item.Partitioner == "" {
		item.Partitioner = b.Partitioner
	}
	if item.TimeoutMS == 0 {
		item.TimeoutMS = b.TimeoutMS
	}
}

// BatchItem is one loop's outcome inside a batch: exactly one of Result
// and Error is set, and Code is the status the same request would have
// drawn from /compile (200, 422, 504...). A failing item never fails the
// batch — errors stay item-level. In the NDJSON streaming mode each
// BatchItem is one output line, emitted in completion order; Index maps
// it back to the request's Items slice.
type BatchItem struct {
	Index  int              `json:"index"`
	Code   int              `json:"code"`
	Result *CompileResponse `json:"result,omitempty"`
	Error  *ErrorResponse   `json:"error,omitempty"`
}

// BatchResponse is the buffered (non-streaming) POST /compile/batch
// success body; Items is in request order.
type BatchResponse struct {
	Items  []BatchItem `json:"items"`
	Errors int         `json:"errors"`
}

// ErrorResponse is every non-2xx body.
type ErrorResponse struct {
	Error string `json:"error"`
	// Stage is the pipeline stage a cancelled or timed-out compile had
	// reached (empty otherwise); see codegen.Stage.
	Stage string `json:"stage,omitempty"`
}

// pickPartitioner mirrors the swpc flag of the same vocabulary.
func pickPartitioner(name string) (partition.Partitioner, error) {
	switch strings.ToLower(name) {
	case "", "rcg":
		return nil, nil // pipeline default (RCG greedy)
	case "portfolio":
		return partition.Portfolio{}, nil
	case "bug":
		return partition.BUG{}, nil
	case "uas":
		return partition.UAS{}, nil
	case "roundrobin":
		return partition.RoundRobin{}, nil
	case "random":
		return partition.Random{Seed: 1}, nil
	case "single":
		return partition.SingleBank{}, nil
	default:
		return nil, fmt.Errorf("unknown partitioner %q", name)
	}
}

// buildResponse converts a pipeline result into the wire shape.
func buildResponse(req *CompileRequest, res *codegen.Result, stats *codegen.RefineStats) (*CompileResponse, error) {
	out := &CompileResponse{
		Name:             req.Name,
		Machine:          res.Cfg.Name,
		Partitioner:      res.PartitionerName,
		PortfolioVariant: res.PortfolioVariant,
		IdealII:          res.IdealII(),
		PartII:           res.PartII(),
		Degradation:      res.Degradation(),
		KernelCopies:     res.Copies.KernelCopies,
	}
	for _, a := range res.Alloc {
		if a != nil {
			out.Spills += len(a.Spilled)
		}
	}
	body := res.Copies.Body
	for i, op := range body.Ops {
		out.Schedule = append(out.Schedule, ScheduledOp{
			Op:      op.String(),
			Cycle:   res.PartSched.Time[i],
			Row:     res.PartSched.Row(i),
			Stage:   res.PartSched.Stage(i),
			Cluster: res.PartSched.Cluster[i],
		})
	}
	if e := res.Exact; e != nil {
		out.Exact = &ExactGapReport{
			MinII: e.MinII, HeuristicII: e.HeuristicII, FinalII: e.II,
			SchedRan: e.SchedRan, SchedProven: e.SchedProven,
			SchedImproved: e.SchedImproved, SchedNodes: e.SchedNodes,
			PartRan: e.PartRan, PartProven: e.PartProven,
			PartImproved: e.PartImproved, PartWon: e.PartWon,
			PartNodes: e.PartNodes,
		}
	}
	if stats != nil {
		out.Refine = &RefineReport{
			Rounds:     stats.Rounds,
			MovesTried: stats.MovesTried,
			MovesKept:  stats.MovesKept,
			StartII:    stats.StartII,
			FinalII:    stats.FinalII,
		}
	}
	if req.ExpandTrip > 0 {
		ex, err := modulo.Expand(res.PartSched, body, req.ExpandTrip)
		if err != nil {
			return nil, fmt.Errorf("expanding for trip %d: %w", req.ExpandTrip, err)
		}
		out.Expansion = &ExpansionReport{
			II:          ex.II,
			Stages:      ex.Stages,
			Trip:        ex.Trip,
			KernelReps:  ex.KernelReps,
			TotalCycles: ex.TotalCycles,
			Prelude:     renderRows(ex.Prelude, body),
			Kernel:      renderRows(ex.Kernel, body),
			Postlude:    renderRows(ex.Postlude, body),
		}
	}
	return out, nil
}

func renderRows(rows [][]modulo.Instance, body *ir.Block) [][]string {
	out := make([][]string, len(rows))
	for i, row := range rows {
		out[i] = make([]string, len(row))
		for j, in := range row {
			out[i][j] = fmt.Sprintf("[i%+d] %s", in.Iter, body.Ops[in.Op].String())
		}
	}
	return out
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
