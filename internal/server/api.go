// Package server implements swpd, the compile-as-a-service daemon: a
// long-running HTTP front end over the five-step pipeline. Requests
// carry a loop in the ir.ParseLoop assembly format plus a machine spec;
// responses carry the compiled outcome (II, degradation, copies, the
// clustered schedule and optionally the expanded prelude/kernel/postlude).
//
// The surface is versioned under /v1/ and speaks two codecs, negotiated
// per request: JSON (the default) and the compact binary encoding of
// internal/wire (application/x-swp-bin), selected via Content-Type for
// the request body and Accept for the response. The historical
// unversioned routes remain as aliases of their /v1/ twins and answer
// with a Deprecation header. The DTOs live in internal/wire — shared by
// both codecs and by the swpc client — and are aliased here so existing
// server-side code keeps its names.
//
// The daemon exists because the pipeline is CPU-bound and bursty: a
// bounded worker pool keeps at most GOMAXPROCS compilations running, a
// bounded queue absorbs short bursts, and everything beyond that is shed
// with 429 so latency stays flat instead of collapsing. Each request runs
// under a context that merges the client connection (disconnect cancels
// the compile) with an optional per-request deadline (expiry returns 504
// naming the pipeline stage reached).
package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"

	"repro/internal/codegen"
	"repro/internal/ir"
	"repro/internal/modulo"
	"repro/internal/partition"
	"repro/internal/wire"
)

// The wire DTOs, aliased so handler code and tests keep their historical
// names. internal/wire owns the definitions (and both codecs).
type (
	// MachineSpec selects a target machine in a request.
	MachineSpec = wire.MachineSpec
	// CompileRequest is the POST /v1/compile body.
	CompileRequest = wire.CompileRequest
	// RequestDefaults is the shared request envelope both handlers fold
	// into items.
	RequestDefaults = wire.RequestDefaults
	// ScheduledOp is one operation of the clustered kernel schedule.
	ScheduledOp = wire.ScheduledOp
	// RefineReport echoes codegen.RefineStats.
	RefineReport = wire.RefineReport
	// ExpansionReport is the flattened pipeline: rows of rendered instances.
	ExpansionReport = wire.ExpansionReport
	// ExactGapReport echoes codegen.ExactReport.
	ExactGapReport = wire.ExactGapReport
	// AdaptiveReport echoes codegen.AdaptiveReport.
	AdaptiveReport = wire.AdaptiveReport
	// CompileResponse is the POST /v1/compile success body.
	CompileResponse = wire.CompileResponse
	// BatchRequest is the POST /v1/compile/batch body.
	BatchRequest = wire.BatchRequest
	// BatchItem is one loop's outcome inside a batch.
	BatchItem = wire.BatchItem
	// BatchResponse is the buffered batch success body.
	BatchResponse = wire.BatchResponse
	// ErrorResponse is every non-2xx body.
	ErrorResponse = wire.ErrorResponse
)

// pickPartitioner mirrors the swpc flag of the same vocabulary.
func pickPartitioner(name string) (partition.Partitioner, error) {
	switch strings.ToLower(name) {
	case "", "rcg":
		return nil, nil // pipeline default (RCG greedy)
	case "portfolio":
		return partition.Portfolio{}, nil
	case "bug":
		return partition.BUG{}, nil
	case "uas":
		return partition.UAS{}, nil
	case "roundrobin":
		return partition.RoundRobin{}, nil
	case "random":
		return partition.Random{Seed: 1}, nil
	case "single":
		return partition.SingleBank{}, nil
	default:
		return nil, fmt.Errorf("unknown partitioner %q", name)
	}
}

// buildResponse converts a pipeline result into the wire shape.
func buildResponse(req *CompileRequest, res *codegen.Result, stats *codegen.RefineStats) (*CompileResponse, error) {
	out := &CompileResponse{
		Name:             req.Name,
		Machine:          res.Cfg.Name,
		Partitioner:      res.PartitionerName,
		PortfolioVariant: res.PortfolioVariant,
		IdealII:          res.IdealII(),
		PartII:           res.PartII(),
		Degradation:      res.Degradation(),
		KernelCopies:     res.Copies.KernelCopies,
	}
	for _, a := range res.Alloc {
		if a != nil {
			out.Spills += len(a.Spilled)
		}
	}
	body := res.Copies.Body
	for i, op := range body.Ops {
		out.Schedule = append(out.Schedule, ScheduledOp{
			Op:      op.String(),
			Cycle:   res.PartSched.Time[i],
			Row:     res.PartSched.Row(i),
			Stage:   res.PartSched.Stage(i),
			Cluster: res.PartSched.Cluster[i],
		})
	}
	if e := res.Exact; e != nil {
		out.Exact = &ExactGapReport{
			MinII: e.MinII, HeuristicII: e.HeuristicII, FinalII: e.II,
			SchedRan: e.SchedRan, SchedProven: e.SchedProven,
			SchedImproved: e.SchedImproved, SchedNodes: e.SchedNodes,
			PartRan: e.PartRan, PartProven: e.PartProven,
			PartImproved: e.PartImproved, PartWon: e.PartWon,
			PartNodes: e.PartNodes,
		}
	}
	if a := res.Adaptive; a != nil && a.Ran {
		out.Adaptive = &AdaptiveReport{
			Bucket: a.Bucket, ExactBucket: a.ExactBucket, Won: a.Won,
		}
	}
	if stats != nil {
		out.Refine = &RefineReport{
			Rounds:     stats.Rounds,
			MovesTried: stats.MovesTried,
			MovesKept:  stats.MovesKept,
			StartII:    stats.StartII,
			FinalII:    stats.FinalII,
		}
	}
	if req.ExpandTrip > 0 {
		ex, err := modulo.Expand(res.PartSched, body, req.ExpandTrip)
		if err != nil {
			return nil, fmt.Errorf("expanding for trip %d: %w", req.ExpandTrip, err)
		}
		out.Expansion = &ExpansionReport{
			II:          ex.II,
			Stages:      ex.Stages,
			Trip:        ex.Trip,
			KernelReps:  ex.KernelReps,
			TotalCycles: ex.TotalCycles,
			Prelude:     renderRows(ex.Prelude, body),
			Kernel:      renderRows(ex.Kernel, body),
			Postlude:    renderRows(ex.Postlude, body),
		}
	}
	return out, nil
}

func renderRows(rows [][]modulo.Instance, body *ir.Block) [][]string {
	out := make([][]string, len(rows))
	for i, row := range rows {
		out[i] = make([]string, len(row))
		for j, in := range row {
			out[i][j] = fmt.Sprintf("[i%+d] %s", in.Iter, body.Ops[in.Op].String())
		}
	}
	return out
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

// writeResponse renders one compile outcome — a *CompileResponse or an
// *ErrorResponse — in the negotiated format. Binary responses carry the
// HTTP status inline in error frames (wire.AppendError), so binary
// clients can decode without consulting the transport.
func writeResponse(w http.ResponseWriter, code int, body any, f wire.Format) {
	if f != wire.FormatBinary {
		writeJSON(w, code, body)
		return
	}
	bp := wire.GetBuffer()
	defer wire.PutBuffer(bp)
	buf := *bp
	switch v := body.(type) {
	case *CompileResponse:
		buf = wire.AppendCompileResponse(buf, v)
	case *ErrorResponse:
		buf = wire.AppendError(buf, code, v)
	default:
		buf = wire.AppendError(buf, code, &ErrorResponse{Error: fmt.Sprintf("%v", body)})
	}
	*bp = buf
	w.Header().Set("Content-Type", wire.ContentTypeBinary)
	w.WriteHeader(code)
	_, _ = w.Write(buf)
}
