package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/cache"
	"repro/internal/codegen"
	"repro/internal/trace"
	"repro/internal/wire"
)

// This file covers the v1 surface: codec negotiation (415/406), the
// deprecated unversioned aliases, and the JSON-vs-binary differential —
// the same compile answered through both codecs must carry byte-identical
// compile tables once re-marshaled.

func newV1Server(t testing.TB) *httptest.Server {
	t.Helper()
	s := New(Config{Pipeline: codegen.Config{Cache: cache.New(), Tracer: trace.New()}})
	t.Cleanup(s.Close)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts
}

func v1Request(t testing.TB) *CompileRequest {
	t.Helper()
	return &CompileRequest{
		Name:       "dot",
		Source:     dotSource(2),
		Machine:    MachineSpec{Clusters: 4, CopyModel: "embedded"},
		ExpandTrip: 8,
	}
}

// TestUnknownContentTypeReturns415 pins the negotiation failure for a
// request body in a codec the server does not speak: 415 plus the
// supported list, so a client can self-correct.
func TestUnknownContentTypeReturns415(t *testing.T) {
	ts := newV1Server(t)
	for _, path := range []string{"/v1/compile", "/v1/compile/batch"} {
		resp, err := http.Post(ts.URL+path, "application/msgpack", strings.NewReader("{}"))
		if err != nil {
			t.Fatal(err)
		}
		var e ErrorResponse
		if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
			t.Fatalf("%s: decoding 415 body: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusUnsupportedMediaType {
			t.Fatalf("%s: status %d, want 415", path, resp.StatusCode)
		}
		if e.Error == "" {
			t.Errorf("%s: 415 body has no error message", path)
		}
		want := wire.RequestTypes()
		if len(e.Supported) != len(want) {
			t.Fatalf("%s: supported list %v, want %v", path, e.Supported, want)
		}
		for i, ct := range want {
			if e.Supported[i] != ct {
				t.Errorf("%s: supported[%d] = %q, want %q", path, i, e.Supported[i], ct)
			}
		}
	}
}

// TestUnsatisfiableAcceptReturns406 pins the response-side negotiation
// failure: an Accept header naming only codecs the server cannot produce.
func TestUnsatisfiableAcceptReturns406(t *testing.T) {
	ts := newV1Server(t)
	body, err := json.Marshal(v1Request(t))
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/compile", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Accept", "text/html")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var e ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatalf("decoding 406 body: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotAcceptable {
		t.Fatalf("status %d, want 406", resp.StatusCode)
	}
	if len(e.Supported) == 0 {
		t.Error("406 body lists no supported response types")
	}
	// The batch route additionally offers NDJSON.
	breq, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/compile/batch", strings.NewReader(`{"items":[]}`))
	if err != nil {
		t.Fatal(err)
	}
	breq.Header.Set("Content-Type", "application/json")
	breq.Header.Set("Accept", "text/html")
	bresp, err := http.DefaultClient.Do(breq)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, bresp.Body)
	bresp.Body.Close()
	if bresp.StatusCode != http.StatusNotAcceptable {
		t.Fatalf("batch status %d, want 406", bresp.StatusCode)
	}
}

// TestLegacyAliasDeprecation proves the unversioned routes still answer —
// with byte-identical bodies to their /v1/ twins — and advertise the move
// via the RFC 9745 Deprecation header plus a successor-version Link.
func TestLegacyAliasDeprecation(t *testing.T) {
	ts := newV1Server(t)
	body, err := json.Marshal(v1Request(t))
	if err != nil {
		t.Fatal(err)
	}
	fetch := func(path string) (*http.Response, []byte) {
		resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		b, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d: %s", path, resp.StatusCode, b)
		}
		return resp, b
	}

	v1Resp, v1Body := fetch("/v1/compile")
	legacyResp, legacyBody := fetch("/compile")

	if got := v1Resp.Header.Get("Deprecation"); got != "" {
		t.Errorf("/v1/compile carries Deprecation %q; the versioned route is not deprecated", got)
	}
	dep := legacyResp.Header.Get("Deprecation")
	if !strings.HasPrefix(dep, "@") {
		t.Errorf("legacy /compile Deprecation = %q, want RFC 9745 @unix-timestamp", dep)
	}
	link := legacyResp.Header.Get("Link")
	if !strings.Contains(link, "/v1/compile") || !strings.Contains(link, `rel="successor-version"`) {
		t.Errorf("legacy /compile Link = %q, want successor-version pointing at /v1/compile", link)
	}
	// Normalize cache provenance: the second request is served warm.
	norm := func(b []byte) *CompileResponse {
		var r CompileResponse
		if err := json.Unmarshal(b, &r); err != nil {
			t.Fatal(err)
		}
		r.CacheHit, r.CacheTier = false, ""
		return &r
	}
	a, bb := norm(v1Body), norm(legacyBody)
	aj, _ := json.Marshal(a)
	bj, _ := json.Marshal(bb)
	if !bytes.Equal(aj, bj) {
		t.Errorf("legacy /compile body diverges from /v1/compile:\n%s\nvs\n%s", bj, aj)
	}
}

// TestBinaryJSONDifferential is the codec differential: one request
// compiled through application/json and through application/x-swp-bin
// must produce the same compile tables byte-for-byte once both are
// re-marshaled to canonical JSON (cache provenance normalized — the two
// requests necessarily hit different tiers).
func TestBinaryJSONDifferential(t *testing.T) {
	ts := newV1Server(t)
	req := v1Request(t)

	var fromJSON CompileResponse
	if code := postJSON(t, ts.URL+"/v1", req, &fromJSON); code != http.StatusOK {
		t.Fatalf("JSON status %d", code)
	}

	frame := wire.AppendCompileRequest(nil, req)
	hr, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/compile", bytes.NewReader(frame))
	if err != nil {
		t.Fatal(err)
	}
	hr.Header.Set("Content-Type", wire.ContentTypeBinary)
	hr.Header.Set("Accept", wire.ContentTypeBinary)
	resp, err := http.DefaultClient.Do(hr)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("binary status %d: %s", resp.StatusCode, raw)
	}
	if ct := resp.Header.Get("Content-Type"); ct != wire.ContentTypeBinary {
		t.Fatalf("binary response Content-Type = %q", ct)
	}
	dec, err := wire.DecodeResponse(raw)
	if err != nil {
		t.Fatalf("decoding binary response: %v", err)
	}
	if dec.Compile == nil {
		t.Fatalf("binary response is not a compile result: %+v", dec)
	}

	normalize := func(r CompileResponse) []byte {
		r.CacheHit, r.CacheTier = false, ""
		b, err := json.Marshal(&r)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	jb := normalize(fromJSON)
	bb := normalize(*dec.Compile)
	if !bytes.Equal(jb, bb) {
		t.Errorf("binary compile tables diverge from JSON:\nJSON:   %s\nbinary: %s", jb, bb)
	}
	if fromJSON.Expansion == nil || dec.Compile.Expansion == nil {
		t.Error("differential did not cover the expansion tables")
	}
}

// TestBinaryBatchRoundTrip drives /v1/compile/batch end to end in the
// binary codec: frame in, one streamed batch frame out, decoded items in
// request order matching a buffered JSON batch of the same loops.
func TestBinaryBatchRoundTrip(t *testing.T) {
	ts := newV1Server(t)
	breq := &BatchRequest{
		RequestDefaults: RequestDefaults{Machine: MachineSpec{Clusters: 4, CopyModel: "embedded"}},
		Items: []CompileRequest{
			{Name: "a", Source: dotSource(2)},
			{Name: "b", Source: dotSource(4)},
			{Source: "bad loop"},
		},
	}
	frame := wire.AppendBatchRequest(nil, breq)
	hr, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/compile/batch", bytes.NewReader(frame))
	if err != nil {
		t.Fatal(err)
	}
	hr.Header.Set("Content-Type", wire.ContentTypeBinary)
	hr.Header.Set("Accept", wire.ContentTypeBinary)
	resp, err := http.DefaultClient.Do(hr)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, raw)
	}
	dec, err := wire.DecodeResponse(raw)
	if err != nil {
		t.Fatalf("decoding batch frame: %v", err)
	}
	if dec.Batch == nil || len(dec.Batch.Items) != len(breq.Items) {
		t.Fatalf("batch decode: %+v", dec)
	}
	if dec.Batch.Errors != 1 {
		t.Errorf("errors = %d, want 1 (the malformed loop)", dec.Batch.Errors)
	}
	for i, it := range dec.Batch.Items {
		if it.Index != i {
			t.Fatalf("item %d decoded out of request order (index %d)", i, it.Index)
		}
	}
	if dec.Batch.Items[0].Result == nil || dec.Batch.Items[0].Result.PartII == 0 {
		t.Errorf("item 0 has no result: %+v", dec.Batch.Items[0])
	}
	if dec.Batch.Items[2].Error == nil {
		t.Error("malformed item 2 did not fail item-level")
	}
}
