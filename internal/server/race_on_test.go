//go:build race

package server

// The race detector slows the scheduler's inner loop by roughly 5-10x,
// so "prompt" cancellation bounds are scaled accordingly.
const raceDelayFactor = 10
