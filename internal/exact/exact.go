// Package exact holds the pure-go branch-and-bound solvers behind the
// pipeline's exact-solver portfolio arm: optimal bank assignment over a
// sealed register component graph (Partition) and optimal modulo
// scheduling for small loops (Schedule). Both are anytime searches in the
// sense the combinatorial register-allocation literature uses (Castañeda
// Lozano & Schulte's survey; Roorda's SMT software pipelining): they are
// seeded with the heuristic's result as the incumbent, improve it when
// the search finds something strictly better, and return the incumbent
// unchanged when the node budget or the caller's context runs out — so a
// caller is never worse off for having asked.
//
// Each result carries a Proven flag: true means the search ran to
// exhaustion (or the incumbent already sits on a proven lower bound) and
// the returned answer is optimal, false means the budget expired first
// and the answer is merely the best incumbent. The distinction is the
// heart of the optimality-gap telemetry (EXPERIMENTS.md): only proven
// loops contribute to the greedy-vs-optimal gap, the rest are counted as
// budget-exhausted.
//
// Determinism: the search trees, branch orders and node budgets are fully
// deterministic, so two runs with the same NodeBudget return identical
// results. The context is a cancellation safety net layered on top (the
// PR-3 deadline machinery); when callers want reproducible tables they
// set a generous deadline and let the node budget be the binding limit.
//
// No cgo, no external solver: the loops in the 211-loop suite are small
// enough (a few dozen registers and operations) that a careful
// branch-and-bound with symmetry breaking and optimistic bounds proves
// optimality within tens of thousands of nodes on most of them.
package exact

// Default search limits. They bound worst-case work per compile, chosen
// so the exact arm costs at most a few milliseconds on suite-sized loops;
// callers override through the corresponding input fields.
const (
	// DefaultPartitionNodes caps Partition's search nodes (one node = one
	// bank tried for one register).
	DefaultPartitionNodes = 200_000
	// DefaultScheduleNodes caps Schedule's search nodes across the whole
	// II sweep (one node = one kernel row tried for one operation).
	DefaultScheduleNodes = 50_000
	// DefaultMaxRegs is the largest RCG (in nodes) the partition arm
	// attempts; bigger graphs keep the greedy result untouched.
	DefaultMaxRegs = 28
	// DefaultMaxOps is the largest loop body (in operations) the
	// scheduling arm searches; bigger loops still get the cheap
	// lower-bound certificate (II == MinII means proven optimal).
	DefaultMaxOps = 24
)
