package exact

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"repro/internal/ddg"
	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/modulo"
)

// ScheduleInput describes one exact modulo-scheduling problem. Cluster
// placement is taken as given (the pipeline fixes it during bank
// assignment), so the search is over kernel rows and stages only:
// minimize II, then compact each operation to its earliest legal cycle
// (the register-pressure-friendly secondary objective).
type ScheduleInput struct {
	// Graph is the dependence graph of the loop body.
	Graph *ddg.Graph
	// Cfg is the machine model.
	Cfg *machine.Config
	// ClusterOf pins each operation to a cluster. Required (with no
	// modulo.AnyCluster entries) on clustered machines; ignored on
	// monolithic ones.
	ClusterOf []int
	// Incumbent is the heuristic schedule to improve on. Required: it
	// bounds the II search from above and is returned unchanged when the
	// search cannot do better (or runs out of budget).
	Incumbent *modulo.Schedule
	// NodeBudget caps search nodes across the whole II sweep (one node =
	// one kernel row tried for one operation); ≤ 0 means
	// DefaultScheduleNodes. The budget, not the context, keeps results
	// deterministic.
	NodeBudget int64
	// MaxOps bounds the loop size the search attempts; 0 means
	// DefaultMaxOps, negative means unlimited. Oversized loops skip the
	// search but still get the free lower-bound certificate
	// (Incumbent.II == MinII proves the heuristic optimal).
	MaxOps int
}

// ScheduleResult reports the outcome of one exact scheduling search.
type ScheduleResult struct {
	// Schedule is the best known schedule: a strictly better one when the
	// search found it, otherwise the incumbent (never nil).
	Schedule *modulo.Schedule
	// MinII is the scheduler's proven lower bound (max of recurrence and
	// resource MII) — the certificate the gap telemetry reports against.
	MinII int
	// Proven reports that Schedule.II is optimal: either it equals MinII,
	// or the search exhausted every smaller II without aborting.
	Proven bool
	// Improved reports that the search beat the incumbent's II.
	Improved bool
	// Nodes is how many search nodes were expanded.
	Nodes int64
}

// Schedule searches for a modulo schedule with a provably minimal II.
// Candidate IIs are tried in ascending order from the lower bound, so the
// first feasible one is optimal. Within one II, operations are branched
// in decreasing criticality (longest dependence height first), each over
// its II possible kernel rows; rows are checked against the same
// functional-unit, unit-kind, copy-port and bus model as modulo.Check,
// and after each placement the stage offsets are solved as a system of
// difference constraints (Bellman-Ford over k_to - k_from ≥
// ceil((latency - II·distance - row_to + row_from)/II)); a positive cycle
// means no stage assignment can realize the rows, pruning the subtree.
// This is sound and complete per II: rows plus stages span every legal
// schedule, so exhausting an II proves it infeasible.
//
// Anytime contract: on node-budget or context expiry the incumbent comes
// back with Proven == false. ctx errors are never returned as errors.
func Schedule(ctx context.Context, in ScheduleInput) (*ScheduleResult, error) {
	g, cfg, inc := in.Graph, in.Cfg, in.Incumbent
	if g == nil || cfg == nil {
		return nil, errors.New("exact: nil graph or config")
	}
	if inc == nil {
		return nil, errors.New("exact: nil incumbent schedule")
	}
	n := len(g.Ops)
	if len(inc.Time) != n {
		return nil, fmt.Errorf("exact: incumbent covers %d/%d ops", len(inc.Time), n)
	}
	clusterOf := in.ClusterOf
	if !cfg.Monolithic() {
		if len(clusterOf) != n {
			return nil, fmt.Errorf("exact: cluster pinning covers %d/%d ops", len(clusterOf), n)
		}
		for i, c := range clusterOf {
			if c == modulo.AnyCluster || c < 0 || c >= cfg.Clusters {
				return nil, fmt.Errorf("exact: op %d not pinned to a cluster (got %d)", i, c)
			}
		}
	}

	minII := modulo.MinII(g, cfg, modulo.Options{ClusterOf: clusterOf})
	res := &ScheduleResult{Schedule: inc, MinII: minII}
	if n == 0 || inc.II <= minII {
		// The heuristic already sits on the lower bound: proven optimal
		// with zero search.
		res.Proven = true
		return res, nil
	}
	maxOps := in.MaxOps
	if maxOps == 0 {
		maxOps = DefaultMaxOps
	}
	if maxOps > 0 && n > maxOps {
		return res, nil // too big to search; keep the bare certificate
	}
	if ctx.Err() != nil {
		return res, nil // already cancelled: incumbent, zero search
	}

	s := &schedSearch{
		ctx:    ctx,
		g:      g,
		cfg:    cfg,
		n:      n,
		budget: in.NodeBudget,
		row:    make([]int, n),
		k:      make([]int, n),
		base:   make([]int, n),
		height: make([]int, n),
		order:  make([]int, n),
		clus:   make([]int, n),
		isPort: make([]bool, n),
		kind:   make([]machine.FUKind, n),
	}
	if s.budget <= 0 {
		s.budget = DefaultScheduleNodes
	}
	for i, op := range g.Ops {
		if !cfg.Monolithic() {
			s.clus[i] = clusterOf[i]
		}
		s.isPort[i] = op.Code == ir.Copy && !cfg.Monolithic() && cfg.Model == machine.CopyUnit
		s.kind[i] = machine.OpKind(op)
	}

	for ii := minII; ii < inc.II; ii++ {
		found, aborted := s.solveII(ii)
		res.Nodes = s.nodes
		if aborted {
			return res, nil // budget or ctx expired: incumbent, unproven
		}
		if found {
			res.Schedule = s.build(ii)
			res.Proven = true // every smaller II was exhausted infeasible
			res.Improved = true
			return res, nil
		}
	}
	res.Nodes = s.nodes
	res.Proven = true // exhausted [minII, inc.II): the incumbent is optimal
	return res, nil
}

// schedSearch is the DFS state for one Schedule call, reused across the
// ascending-II sweep.
type schedSearch struct {
	ctx    context.Context
	g      *ddg.Graph
	cfg    *machine.Config
	n      int
	budget int64
	nodes  int64

	row    []int // op -> kernel row, -1 unassigned
	k      []int // op -> stage, solved by feasible()
	base   []int // op -> preferred first row (ASAP row)
	height []int // op -> dependence height at the current II
	order  []int // branch order, most critical first
	clus   []int // op -> pinned cluster
	isPort []bool
	kind   []machine.FUKind

	// Per-row resource occupancy at the current II.
	fu     [][]int // [row][cluster]
	ports  [][]int
	bus    []int
	demand [][][machine.NumKinds]int
}

// solveII exhausts row assignments at a fixed ii. found means a complete
// legal schedule is in s.row/s.k; aborted means the budget or context
// expired mid-search.
func (s *schedSearch) solveII(ii int) (found, aborted bool) {
	s.prepare(ii)
	return s.dfs(0, ii)
}

// prepare sizes the resource tables and computes the ASAP rows and the
// criticality order for ii.
func (s *schedSearch) prepare(ii int) {
	s.fu = make([][]int, ii)
	s.ports = make([][]int, ii)
	s.bus = make([]int, ii)
	s.demand = make([][][machine.NumKinds]int, ii)
	for r := range s.fu {
		s.fu[r] = make([]int, s.cfg.Clusters)
		s.ports[r] = make([]int, s.cfg.Clusters)
		s.demand[r] = make([][machine.NumKinds]int, s.cfg.Clusters)
	}
	for i := range s.row {
		s.row[i] = -1
	}
	// ASAP lower bounds by relaxation: lb[to] ≥ lb[from] + L - II·D. At
	// ii ≥ RecMII no cycle is positive, so n rounds converge.
	lb := s.k // reused as a scratch here; feasible() overwrites it later
	for i := range lb {
		lb[i] = 0
	}
	for round := 0; round < s.n; round++ {
		changed := false
		for from := 0; from < s.n; from++ {
			for _, e := range s.g.Out[from] {
				if t := lb[from] + e.Latency - ii*e.Distance; t > lb[e.To] {
					lb[e.To] = t
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
	for i := range s.base {
		s.base[i] = lb[i] % ii
	}
	// Height: longest constraint chain below each op — the classic
	// criticality priority. Branching critical ops first fails fast.
	h := s.height
	for i, op := range s.g.Ops {
		h[i] = s.cfg.Latency(op)
	}
	for round := 0; round < s.n; round++ {
		changed := false
		for from := 0; from < s.n; from++ {
			for _, e := range s.g.Out[from] {
				if t := h[e.To] + e.Latency - ii*e.Distance; t > h[from] {
					h[from] = t
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
	for i := range s.order {
		s.order[i] = i
	}
	sort.Slice(s.order, func(x, y int) bool {
		a, b := s.order[x], s.order[y]
		if h[a] != h[b] {
			return h[a] > h[b]
		}
		return a < b
	})
}

// dfs places order[d:] at the current ii.
func (s *schedSearch) dfs(d, ii int) (found, aborted bool) {
	if d == s.n {
		return true, false
	}
	op := s.order[d]
	for off := 0; off < ii; off++ {
		s.nodes++
		if s.nodes > s.budget {
			return false, true
		}
		if s.nodes&255 == 0 && s.ctx.Err() != nil {
			return false, true
		}
		r := s.base[op] + off
		if r >= ii {
			r -= ii
		}
		if !s.fits(op, r) {
			continue
		}
		s.occupy(op, r, 1)
		s.row[op] = r
		if s.feasible(ii) {
			if found, aborted = s.dfs(d+1, ii); found || aborted {
				return found, aborted
			}
		}
		s.row[op] = -1
		s.occupy(op, r, -1)
	}
	return false, false
}

// fits reports whether row r has capacity for op under the same resource
// model modulo.Check enforces.
func (s *schedSearch) fits(op, r int) bool {
	c := s.clus[op]
	if s.isPort[op] {
		if p := s.cfg.CopyPortsPerCluster; p > 0 && s.ports[r][c]+1 > p {
			return false
		}
		if b := s.cfg.Busses; b > 0 && s.bus[r]+1 > b {
			return false
		}
		return true
	}
	if s.fu[r][c]+1 > s.cfg.FUsPerCluster() {
		return false
	}
	if s.cfg.Heterogeneous() {
		d := s.demand[r][c]
		d[s.kind[op]]++
		if !s.cfg.KindFits(d) {
			return false
		}
	}
	return true
}

// occupy adds (dir=+1) or removes (dir=-1) op's resource usage in row r.
func (s *schedSearch) occupy(op, r, dir int) {
	c := s.clus[op]
	if s.isPort[op] {
		s.ports[r][c] += dir
		s.bus[r] += dir
	} else {
		s.fu[r][c] += dir
		s.demand[r][c][s.kind[op]] += dir
	}
}

// feasible solves the stage offsets for the currently assigned rows as
// difference constraints: for each dependence from→to with both ends
// assigned, k_to - k_from ≥ ceil((L - II·D - row_to + row_from)/II).
// Bellman-Ford from the all-zero least solution; a change in the n-th
// relaxation round means a positive cycle, i.e. no stage assignment
// exists. On success s.k holds the least (earliest, most compact)
// solution.
func (s *schedSearch) feasible(ii int) bool {
	k := s.k
	for i := range k {
		k[i] = 0
	}
	for round := 0; ; round++ {
		changed := false
		for from := 0; from < s.n; from++ {
			if s.row[from] < 0 {
				continue
			}
			for _, e := range s.g.Out[from] {
				if s.row[e.To] < 0 {
					continue
				}
				c := ceilDiv(e.Latency-ii*e.Distance-s.row[e.To]+s.row[from], ii)
				if e.To == from {
					if c > 0 {
						return false // self-dependence tighter than II allows
					}
					continue
				}
				if t := k[from] + c; t > k[e.To] {
					k[e.To] = t
					changed = true
				}
			}
		}
		if !changed {
			return true
		}
		if round >= s.n {
			return false // positive cycle: rows are unrealizable
		}
	}
}

// build materializes the found assignment as a modulo.Schedule with
// Time[i] = row[i] + II·k[i] (the least k, so times are maximally
// compact).
func (s *schedSearch) build(ii int) *modulo.Schedule {
	sched := &modulo.Schedule{
		II:      ii,
		Time:    make([]int, s.n),
		Cluster: make([]int, s.n),
	}
	copy(sched.Cluster, s.clus)
	for i := 0; i < s.n; i++ {
		sched.Time[i] = s.row[i] + ii*s.k[i]
		if end := sched.Time[i] + s.cfg.Latency(s.g.Ops[i]); end > sched.Length {
			sched.Length = end
		}
	}
	return sched
}

// ceilDiv returns ceil(a/b) for b > 0 and any sign of a.
func ceilDiv(a, b int) int {
	q := a / b
	if a%b > 0 {
		q++
	}
	return q
}
