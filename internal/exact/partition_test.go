package exact

import (
	"context"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/ir"
)

func reg(id int) ir.Reg { return ir.Reg{ID: id, Class: ir.Int} }

// chainGraph builds r0-r1-...-r(n-1) with affinity w on each link.
func chainGraph(n int, w float64) *core.RCG {
	g := core.NewRCG()
	for i := 0; i < n; i++ {
		g.AddNode(reg(i))
		g.AddNodeWeight(reg(i), float64(n-i))
	}
	for i := 0; i+1 < n; i++ {
		g.AddEdge(reg(i), reg(i+1), w)
	}
	return g
}

func TestPartitionChainProvenOptimal(t *testing.T) {
	// A pure affinity chain with no capacity pressure: the optimum keeps
	// everything in one bank and collects every edge.
	g := chainGraph(6, 2.0)
	res, err := Partition(context.Background(), PartitionInput{Graph: g, Banks: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Proven {
		t.Fatalf("chain of 6 not proven optimal (nodes=%d)", res.Nodes)
	}
	if want := 5 * 2.0; res.Objective != want {
		t.Fatalf("objective = %v, want %v", res.Objective, want)
	}
	counts := res.Assignment.Counts()
	for _, c := range counts {
		if c != 0 && c != 6 {
			t.Fatalf("optimum should be one bank, got counts %v", counts)
		}
	}
}

func TestPartitionAntiAffinitySplits(t *testing.T) {
	// Two registers with a strongly negative edge must be split; a third
	// with affinity to r0 should follow r0.
	g := core.NewRCG()
	g.AddEdge(reg(0), reg(1), -10)
	g.AddEdge(reg(0), reg(2), 3)
	res, err := Partition(context.Background(), PartitionInput{Graph: g, Banks: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Proven || res.Objective != 3 {
		t.Fatalf("proven=%v objective=%v, want proven with 3", res.Proven, res.Objective)
	}
	a := res.Assignment
	if a.Bank(reg(0)) == a.Bank(reg(1)) {
		t.Fatal("anti-affinity pair share a bank")
	}
	if a.Bank(reg(0)) != a.Bank(reg(2)) {
		t.Fatal("affinity pair split")
	}
}

func TestPartitionBeatsBadIncumbent(t *testing.T) {
	g := chainGraph(5, 1.0)
	bad := &core.Assignment{Banks: 2, Of: map[ir.Reg]int{}}
	for i := 0; i < 5; i++ {
		bad.Of[reg(i)] = i % 2 // alternating banks: objective 0
	}
	res, err := Partition(context.Background(), PartitionInput{Graph: g, Banks: 2, Incumbent: bad})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Improved || !res.Proven {
		t.Fatalf("improved=%v proven=%v, want both", res.Improved, res.Proven)
	}
	if res.IncumbentObjective != 0 {
		t.Fatalf("incumbent objective = %v, want 0", res.IncumbentObjective)
	}
	if res.Objective <= res.IncumbentObjective {
		t.Fatalf("objective %v did not beat incumbent %v", res.Objective, res.IncumbentObjective)
	}
}

func TestPartitionKeepsOptimalIncumbent(t *testing.T) {
	g := chainGraph(4, 1.0)
	opt := &core.Assignment{Banks: 2, Of: map[ir.Reg]int{}}
	for i := 0; i < 4; i++ {
		opt.Of[reg(i)] = 0
	}
	res, err := Partition(context.Background(), PartitionInput{Graph: g, Banks: 2, Incumbent: opt})
	if err != nil {
		t.Fatal(err)
	}
	if res.Improved {
		t.Fatal("claimed improvement over an already-optimal incumbent")
	}
	if !res.Proven {
		t.Fatal("exhaustive search over 4 nodes should prove the incumbent")
	}
	if res.Assignment != opt {
		t.Fatal("incumbent should be returned as-is when not improved")
	}
}

func TestPartitionHardConstraints(t *testing.T) {
	// r0 and r1 attract strongly but are constrained apart; r2 is forced
	// onto r0's bank by a +Inf edge.
	g := core.NewRCG()
	g.AddEdge(reg(0), reg(1), 100)
	g.Constrain(reg(0), reg(1))
	g.AddEdge(reg(0), reg(2), math.Inf(1))
	g.AddEdge(reg(1), reg(2), 1)
	res, err := Partition(context.Background(), PartitionInput{Graph: g, Banks: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Proven {
		t.Fatal("not proven")
	}
	a := res.Assignment
	if a.Bank(reg(0)) == a.Bank(reg(1)) {
		t.Fatal("-Inf constraint violated")
	}
	if a.Bank(reg(0)) != a.Bank(reg(2)) {
		t.Fatal("+Inf constraint violated")
	}
	if res.Objective != 0 {
		t.Fatalf("objective = %v, want 0 (hard edges carry no value, r1/r2 split)", res.Objective)
	}
}

func TestPartitionCapacity(t *testing.T) {
	// Four mutually attracted registers, capacity 2 per bank: the optimum
	// must split 2/2 even though affinity wants one bank.
	g := core.NewRCG()
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			g.AddEdge(reg(i), reg(j), 1)
		}
	}
	res, err := Partition(context.Background(), PartitionInput{Graph: g, Banks: 2, Capacity: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Proven {
		t.Fatal("not proven")
	}
	counts := res.Assignment.Counts()
	if counts[0] != 2 || counts[1] != 2 {
		t.Fatalf("counts = %v, want [2 2]", counts)
	}
	if res.Objective != 2 {
		t.Fatalf("objective = %v, want 2 (one intra-bank edge per bank)", res.Objective)
	}
}

func TestPartitionCapacityInfeasibleIgnored(t *testing.T) {
	// 5 nodes, 2 banks, capacity 2: cannot fit, so the cap must be
	// dropped instead of failing.
	g := chainGraph(5, 1.0)
	res, err := Partition(context.Background(), PartitionInput{Graph: g, Banks: 2, Capacity: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Proven || res.Objective != 4 {
		t.Fatalf("proven=%v objective=%v, want proven with 4 (cap ignored)", res.Proven, res.Objective)
	}
}

func TestPartitionPreColoring(t *testing.T) {
	g := chainGraph(3, 1.0)
	pre := map[ir.Reg]int{reg(0): 1, reg(99): 0} // reg(99) not in the graph
	res, err := Partition(context.Background(), PartitionInput{Graph: g, Banks: 2, Pre: pre})
	if err != nil {
		t.Fatal(err)
	}
	a := res.Assignment
	if a.Bank(reg(0)) != 1 {
		t.Fatalf("pre-colored reg moved to bank %d", a.Bank(reg(0)))
	}
	if b, ok := a.Of[reg(99)]; !ok || b != 0 {
		t.Fatal("pre-colored register outside the graph dropped from the assignment")
	}
	// Optimal completion follows the pre-color: everything on bank 1.
	if !res.Proven || res.Objective != 2 {
		t.Fatalf("proven=%v objective=%v, want proven with 2", res.Proven, res.Objective)
	}
	if a.Bank(reg(1)) != 1 || a.Bank(reg(2)) != 1 {
		t.Fatal("chain did not follow the pre-colored bank")
	}
}

func TestPartitionPreColoringSkipsEmptyBanks(t *testing.T) {
	// Pre-color to the last bank only: the symmetry breaker must still
	// consider that bank for the free registers.
	g := core.NewRCG()
	g.AddEdge(reg(0), reg(1), 5)
	pre := map[ir.Reg]int{reg(0): 3}
	res, err := Partition(context.Background(), PartitionInput{Graph: g, Banks: 4, Pre: pre})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Proven || res.Objective != 5 {
		t.Fatalf("proven=%v objective=%v, want proven with 5", res.Proven, res.Objective)
	}
	if res.Assignment.Bank(reg(1)) != 3 {
		t.Fatalf("free register should join the pre-colored bank 3, got %d", res.Assignment.Bank(reg(1)))
	}
}

// antiClique builds K_n with all edges -1: the optimistic bound is 0
// everywhere (no positive edges), so the search cannot close early — the
// instance that exercises budget and context expiry for real.
func antiClique(n, banks int) (*core.RCG, *core.Assignment) {
	g := core.NewRCG()
	inc := &core.Assignment{Banks: banks, Of: map[ir.Reg]int{}}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.AddEdge(reg(i), reg(j), -1)
		}
		inc.Of[reg(i)] = i % banks
	}
	return g, inc
}

func TestPartitionBudgetReturnsIncumbent(t *testing.T) {
	g, inc := antiClique(12, 2)
	res, err := Partition(context.Background(), PartitionInput{Graph: g, Banks: 2, Incumbent: inc, NodeBudget: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Proven {
		t.Fatal("budget of 1 node cannot prove optimality of 12 registers")
	}
	if res.Assignment != inc {
		t.Fatal("budget expiry must hand back the incumbent untouched")
	}
	if res.Nodes > 2 {
		t.Fatalf("expanded %d nodes on a budget of 1", res.Nodes)
	}
}

func TestPartitionExpiredContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	g, inc := antiClique(16, 2)
	res, err := Partition(ctx, PartitionInput{Graph: g, Banks: 2, Incumbent: inc})
	if err != nil {
		t.Fatal(err)
	}
	if res.Proven {
		t.Fatal("expired context should abort, not prove")
	}
	if res.Assignment != inc {
		t.Fatal("expired context must hand back the incumbent")
	}
	if res.Nodes != 0 {
		t.Fatalf("expanded %d nodes under an already-expired context, want 0", res.Nodes)
	}
}

func TestPartitionErrors(t *testing.T) {
	if _, err := Partition(context.Background(), PartitionInput{Banks: 2}); err == nil {
		t.Error("nil graph accepted")
	}
	g := chainGraph(2, 1.0)
	if _, err := Partition(context.Background(), PartitionInput{Graph: g, Banks: 0}); err == nil {
		t.Error("0 banks accepted")
	}
	if _, err := Partition(context.Background(), PartitionInput{
		Graph: g, Banks: 2, Pre: map[ir.Reg]int{reg(0): 7},
	}); err == nil {
		t.Error("out-of-range pre-color accepted")
	}
}

func TestObjectiveScoring(t *testing.T) {
	g := core.NewRCG()
	g.AddEdge(reg(0), reg(1), 2)
	g.AddEdge(reg(1), reg(2), -3)
	g.Constrain(reg(0), reg(2))
	together := &core.Assignment{Banks: 2, Of: map[ir.Reg]int{reg(0): 0, reg(1): 0, reg(2): 1}}
	if got := Objective(g, together); got != 2 {
		t.Errorf("Objective = %v, want 2", got)
	}
	violating := &core.Assignment{Banks: 2, Of: map[ir.Reg]int{reg(0): 0, reg(1): 1, reg(2): 0}}
	if got := Objective(g, violating); !math.IsInf(got, -1) {
		t.Errorf("Objective = %v, want -Inf for a constrained pair sharing a bank", got)
	}
	if got := Objective(g, nil); !math.IsInf(got, -1) {
		t.Errorf("Objective(nil) = %v, want -Inf", got)
	}
}
