package exact_test

import (
	"context"
	"runtime"
	"testing"
	"time"

	"repro/internal/codegen"
	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/ir"
	"repro/internal/loopgen"
	"repro/internal/machine"
)

// bigAntiClique builds K_n with every edge at weight -1 and a balanced
// round-robin incumbent. All-negative edges zero the optimistic bound, so
// pruning is weakest and the tree is genuinely large — the instance family
// the abort paths need. The balanced incumbent is already optimal, so an
// aborted search can never have displaced it.
func bigAntiClique(n, banks int) (*core.RCG, *core.Assignment) {
	g := core.NewRCG()
	reg := func(i int) ir.Reg { return ir.Reg{ID: i, Class: ir.Int} }
	for i := 0; i < n; i++ {
		g.AddNode(reg(i))
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			g.AddEdge(reg(i), reg(j), -1)
		}
	}
	inc := &core.Assignment{Banks: banks, Of: make(map[ir.Reg]int, n)}
	for i := 0; i < n; i++ {
		inc.Of[reg(i)] = i % banks
	}
	return g, inc
}

// checkNoLeak asserts the goroutine count settles back to the baseline.
func checkNoLeak(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if now := runtime.NumGoroutine(); now > before {
		t.Fatalf("goroutines leaked: %d before, %d after", before, now)
	}
}

// TestPartitionCancelMidSearch cancels a huge branch-and-bound tree while
// the DFS is inside it: the solver must return promptly with the incumbent
// intact, no error, and no goroutine left behind (run under -race in CI).
func TestPartitionCancelMidSearch(t *testing.T) {
	before := runtime.NumGoroutine()
	g, inc := bigAntiClique(22, 4)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	type out struct {
		res *exact.PartitionResult
		err error
	}
	done := make(chan out, 1)
	go func() {
		res, err := exact.Partition(ctx, exact.PartitionInput{
			Graph: g, Banks: 4, Incumbent: inc, NodeBudget: 1 << 40,
		})
		done <- out{res, err}
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()

	select {
	case o := <-done:
		if o.err != nil {
			t.Fatalf("cancellation surfaced as an error: %v", o.err)
		}
		if o.res.Assignment == nil {
			t.Fatal("no assignment after cancel despite an incumbent")
		}
		if !o.res.Proven && o.res.Assignment != inc {
			t.Fatal("aborted search did not return the incumbent unchanged")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled search did not return")
	}
	checkNoLeak(t, before)
}

// TestScheduleExpiredContextOnPipelineLoop feeds the exact scheduler a
// real pipeline product — the clustered graph and heuristic schedule of a
// loopgen loop — under an already-expired context: it must hand the
// incumbent back untouched, spend zero nodes, claim no proof, and leak
// nothing.
func TestScheduleExpiredContextOnPipelineLoop(t *testing.T) {
	before := runtime.NumGoroutine()
	loops := loopgen.Generate(loopgen.Params{N: 8, Seed: loopgen.DefaultParams().Seed})
	cfg := machine.MustClustered16(4, machine.Embedded)
	res, err := codegen.Compile(context.Background(), loops[3], cfg, codegen.Options{SkipAlloc: true})
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	eres, err := exact.Schedule(ctx, exact.ScheduleInput{
		Graph:     res.PartGraph,
		Cfg:       cfg,
		ClusterOf: res.Copies.ClusterOf,
		Incumbent: res.PartSched,
	})
	if err != nil {
		t.Fatalf("expired context surfaced as an error: %v", err)
	}
	if eres.Schedule != res.PartSched {
		t.Fatal("expired context did not return the incumbent schedule unchanged")
	}
	if eres.Nodes != 0 {
		t.Fatalf("expired context still spent %d nodes", eres.Nodes)
	}
	if eres.Improved {
		t.Fatal("expired context claims an improvement")
	}
	checkNoLeak(t, before)
}
