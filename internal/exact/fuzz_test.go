package exact_test

import (
	"bytes"
	"context"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/exact"
	"repro/internal/ir"
)

// fuzzGraph decodes an arbitrary byte string into a register component
// graph plus a partitioning request, mirroring internal/core's greedy
// fuzzer so the two targets explore the same instance space. The decoder
// is total: every input yields a valid (graph, banks, capacity, pre)
// quadruple. Layout: byte 0 picks the bank count, byte 1 the node count,
// byte 2 the per-bank capacity (0 = unlimited), byte 3 optionally
// pre-colors a node, and the rest is consumed in (a, b, w) triples as
// signed-weight edges, with w == 127 meaning a hard Constrain edge.
// Node counts stay small enough that a modest node budget usually proves
// optimality, so the cross-check below bites on most inputs.
func fuzzGraph(data []byte) (g *core.RCG, banks, capacity int, pre map[ir.Reg]int) {
	at := func(i int) byte {
		if i < len(data) {
			return data[i]
		}
		return 0
	}
	banks = 1 + int(at(0))%4
	n := 1 + int(at(1))%14
	if c := int(at(2)) % 8; c > 0 {
		capacity = c
	}
	reg := func(i int) ir.Reg {
		idx := i % n
		return ir.Reg{ID: 1 + idx, Class: ir.Class(idx % 2)}
	}
	g = core.NewRCG()
	for i := 0; i < n; i++ {
		g.AddNode(reg(i))
	}
	pre = map[ir.Reg]int{}
	if at(3)%4 == 0 {
		pre[reg(int(at(4)))] = int(at(5)) % banks
	}
	for i := 6; i+2 < len(data); i += 3 {
		a, b := reg(int(data[i])), reg(int(data[i+1]))
		switch w := int8(data[i+2]); {
		case w == 127:
			g.Constrain(a, b)
		default:
			g.AddEdge(a, b, float64(w))
			if w > 0 {
				g.AddNodeWeight(a, float64(w))
				g.AddNodeWeight(b, float64(w))
			}
		}
	}
	return g, banks, capacity, pre
}

// FuzzExactPartition cross-checks the branch-and-bound solver against the
// Figure 4 greedy heuristic on random register component graphs: the
// solver must never fail on a well-formed request, must return a complete
// in-range assignment honoring pre-colors, must never score below the
// greedy incumbent it was seeded with, and — when it proves optimality —
// must dominate greedy outright. Everything is rerun once to pin
// determinism (the gap tables depend on it).
func FuzzExactPartition(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 4, 0, 0, 2, 1, 0, 1, 10, 1, 2, 246, 2, 3, 127})
	f.Add([]byte{3, 9, 2, 1, 0, 0, 0, 1, 50, 1, 2, 50, 0, 2, 127})
	f.Add(bytes.Repeat([]byte{2, 11, 3, 9, 2, 40}, 12))
	f.Fuzz(func(t *testing.T, data []byte) {
		g, banks, capacity, pre := fuzzGraph(data)
		greedy, err := g.PartitionVariant(banks, core.DefaultWeights(), pre, core.Variant{}, nil)
		if err != nil {
			t.Fatalf("greedy failed on valid input: %v", err)
		}
		res, err := exact.Partition(context.Background(), exact.PartitionInput{
			Graph:      g,
			Banks:      banks,
			Capacity:   capacity,
			Pre:        pre,
			Incumbent:  greedy,
			NodeBudget: 50_000,
		})
		if err != nil {
			t.Fatalf("exact failed on valid input: %v", err)
		}
		asg := res.Assignment
		if asg == nil {
			t.Fatal("no assignment despite a greedy incumbent")
		}
		if err := asg.Validate(); err != nil {
			t.Fatal(err)
		}
		if asg.Banks != banks {
			t.Fatalf("assignment reports %d banks, requested %d", asg.Banks, banks)
		}
		for _, r := range g.Nodes {
			b, ok := asg.Of[r]
			if !ok {
				t.Fatalf("register %s left unassigned", r)
			}
			if b < 0 || b >= banks {
				t.Fatalf("register %s assigned out-of-range bank %d", r, b)
			}
		}
		for r, b := range pre {
			if asg.Of[r] != b {
				t.Fatalf("pre-colored %s moved from bank %d to %d", r, b, asg.Of[r])
			}
		}

		// The solver must never fall below its incumbent. Capacity can make
		// the raw objective incomparable (greedy ignores it), so the
		// cross-check applies on uncapacitated instances.
		if capacity == 0 {
			go_, eo := exact.Objective(g, greedy), exact.Objective(g, asg)
			if eo < go_ && !(math.IsInf(eo, -1) && math.IsInf(go_, -1)) {
				t.Fatalf("exact objective %v below greedy %v", eo, go_)
			}
			if res.Improved && !(eo > go_) {
				t.Fatalf("Improved set but objective %v does not beat greedy %v", eo, go_)
			}
			if res.Proven && !math.IsInf(go_, -1) && eo < go_ {
				t.Fatalf("proven optimum %v worse than greedy %v", eo, go_)
			}
		}

		// Determinism: same input, same tree, same answer.
		res2, err := exact.Partition(context.Background(), exact.PartitionInput{
			Graph: g, Banks: banks, Capacity: capacity, Pre: pre,
			Incumbent: greedy, NodeBudget: 50_000,
		})
		if err != nil {
			t.Fatal(err)
		}
		if res2.Nodes != res.Nodes || res2.Proven != res.Proven || res2.Objective != res.Objective {
			t.Fatalf("nondeterministic: (%d nodes, proven=%v, obj=%v) then (%d, %v, %v)",
				res.Nodes, res.Proven, res.Objective, res2.Nodes, res2.Proven, res2.Objective)
		}
		for r, b := range res.Assignment.Of {
			if res2.Assignment.Of[r] != b {
				t.Fatalf("nondeterministic: %s went to bank %d, then %d", r, b, res2.Assignment.Of[r])
			}
		}
	})
}
