package exact_test

import (
	"context"
	"testing"
	"time"

	"repro/internal/codegen"
	"repro/internal/loopgen"
	"repro/internal/machine"
	"repro/internal/modulo"
	"repro/internal/partition"
)

// TestExactArmSchedulesVerify is the exact arm's property test: every
// schedule the full pipeline commits with both exact arms enabled — on a
// randomized loopgen suite distinct from the paper's — must pass the
// independent resource-and-dependence verifier, and the telemetry must be
// internally consistent (MinII ≤ final II ≤ heuristic II, the report's II
// matching the committed schedule, improvements only with a strictly
// smaller II). This pins the adopt-path: an exact "improvement" that the
// verifier would reject can never reach a Result.
func TestExactArmSchedulesVerify(t *testing.T) {
	loops := loopgen.Generate(loopgen.Params{N: 60, Seed: 0xBEEF})
	cfgs := []*machine.Config{
		machine.MustClustered16(2, machine.Embedded),
		machine.MustClustered16(4, machine.CopyUnit),
	}
	opt := codegen.Options{
		Partitioner: partition.Portfolio{},
		SkipAlloc:   true,
		ExactBudget: 10 * time.Second,
		ExactNodes:  20_000,
	}
	proven := 0
	for _, l := range loops {
		for _, cfg := range cfgs {
			res, err := codegen.Compile(context.Background(), l, cfg, opt)
			if err != nil {
				t.Fatalf("%s on %s: %v", l.Name, cfg.Name, err)
			}
			mOpts := modulo.Options{ClusterOf: res.Copies.ClusterOf}
			if err := modulo.Check(res.PartSched, res.PartGraph, cfg, mOpts); err != nil {
				t.Fatalf("%s on %s: committed schedule rejected: %v", l.Name, cfg.Name, err)
			}
			rep := res.Exact
			if rep == nil {
				t.Fatalf("%s on %s: exact arms enabled but no report", l.Name, cfg.Name)
			}
			if rep.II != res.PartSched.II {
				t.Fatalf("%s on %s: report II %d, schedule II %d", l.Name, cfg.Name, rep.II, res.PartSched.II)
			}
			if rep.II > rep.HeuristicII {
				t.Fatalf("%s on %s: exact arm made II worse: %d > %d", l.Name, cfg.Name, rep.II, rep.HeuristicII)
			}
			if rep.SchedImproved && rep.II >= rep.HeuristicII {
				t.Fatalf("%s on %s: SchedImproved without a smaller II (%d vs %d)",
					l.Name, cfg.Name, rep.II, rep.HeuristicII)
			}
			if rep.SchedRan && rep.MinII > rep.II {
				t.Fatalf("%s on %s: II %d below the proven lower bound %d", l.Name, cfg.Name, rep.II, rep.MinII)
			}
			if rep.SchedProven {
				proven++
			}
		}
	}
	if proven == 0 {
		t.Fatal("no loop ended proven optimal — the certificate path never fired")
	}
}
