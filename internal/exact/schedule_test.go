package exact

import (
	"context"
	"testing"

	"repro/internal/ddg"
	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/modulo"
)

func buildGraph(l *ir.Loop, cfg *machine.Config) *ddg.Graph {
	return ddg.Build(l.Body, cfg, ddg.Options{Carried: true})
}

// serialSchedule builds a trivially valid one-op-at-a-time schedule: a
// deliberately bad incumbent with plenty of room to improve.
func serialSchedule(g *ddg.Graph, cfg *machine.Config, clusterOf []int) *modulo.Schedule {
	n := len(g.Ops)
	s := &modulo.Schedule{Time: make([]int, n), Cluster: make([]int, n)}
	t := 0
	for i, op := range g.Ops {
		s.Time[i] = t
		t += cfg.Latency(op)
		if c := clusterOf; c != nil {
			s.Cluster[i] = c[i]
		}
		if end := s.Time[i] + cfg.Latency(op); end > s.Length {
			s.Length = end
		}
	}
	s.II = s.Length
	if s.II < 1 {
		s.II = 1
	}
	return s
}

func triad() *ir.Loop {
	l := ir.NewLoop("triad")
	b := ir.NewLoopBuilder(l)
	s0 := l.NewReg(ir.Float)
	la := b.Load(ir.Float, ir.MemRef{Base: "a", Coeff: 1})
	lb := b.Load(ir.Float, ir.MemRef{Base: "b", Coeff: 1})
	m := b.Mul(la, s0)
	sum := b.Add(m, lb)
	b.Store(sum, ir.MemRef{Base: "c", Coeff: 1})
	return l
}

func TestScheduleImprovesSerialIncumbent(t *testing.T) {
	cfg := machine.Ideal16()
	g := buildGraph(triad(), cfg)
	inc := serialSchedule(g, cfg, nil)
	if err := modulo.Check(inc, g, cfg, modulo.Options{}); err != nil {
		t.Fatalf("serial incumbent invalid: %v", err)
	}
	res, err := Schedule(context.Background(), ScheduleInput{Graph: g, Cfg: cfg, Incumbent: inc})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Improved || !res.Proven {
		t.Fatalf("improved=%v proven=%v nodes=%d, want improved and proven", res.Improved, res.Proven, res.Nodes)
	}
	if res.Schedule.II != res.MinII {
		t.Fatalf("II = %d, want the lower bound %d", res.Schedule.II, res.MinII)
	}
	if err := modulo.Check(res.Schedule, g, cfg, modulo.Options{}); err != nil {
		t.Fatalf("exact schedule fails the verifier: %v", err)
	}
}

func TestScheduleProvenAtLowerBound(t *testing.T) {
	// The heuristic reaches MinII on the triad; the exact arm must prove
	// it with zero search.
	cfg := machine.Ideal16()
	g := buildGraph(triad(), cfg)
	inc, err := modulo.Run(context.Background(), g, cfg, modulo.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Schedule(context.Background(), ScheduleInput{Graph: g, Cfg: cfg, Incumbent: inc})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Proven || res.Improved {
		t.Fatalf("proven=%v improved=%v, want proven incumbent", res.Proven, res.Improved)
	}
	if res.Schedule != inc {
		t.Fatal("incumbent at the lower bound should come back as-is")
	}
	if res.Nodes != 0 {
		t.Fatalf("lower-bound certificate should cost zero nodes, spent %d", res.Nodes)
	}
}

func TestScheduleClusteredPinned(t *testing.T) {
	cfg := machine.MustClustered16(4, machine.Embedded)
	g := buildGraph(triad(), cfg)
	pins := []int{0, 0, 0, 0, 0}
	inc := serialSchedule(g, cfg, pins)
	if err := modulo.Check(inc, g, cfg, modulo.Options{ClusterOf: pins}); err != nil {
		t.Fatalf("serial incumbent invalid: %v", err)
	}
	res, err := Schedule(context.Background(), ScheduleInput{Graph: g, Cfg: cfg, ClusterOf: pins, Incumbent: inc})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Proven {
		t.Fatal("triad on one 4-wide cluster should be provable")
	}
	if err := modulo.Check(res.Schedule, g, cfg, modulo.Options{ClusterOf: pins}); err != nil {
		t.Fatalf("exact schedule fails the verifier: %v", err)
	}
	for i, c := range res.Schedule.Cluster {
		if c != pins[i] {
			t.Fatalf("op %d moved to cluster %d, pinned to %d", i, c, pins[i])
		}
	}
}

func TestScheduleRecurrenceProof(t *testing.T) {
	// A carried accumulator: RecMII = add latency. The improved schedule
	// must land exactly on it.
	cfg := machine.Ideal16()
	l := ir.NewLoop("acc")
	b := ir.NewLoopBuilder(l)
	acc := l.NewReg(ir.Float)
	ld := b.Load(ir.Float, ir.MemRef{Base: "a", Coeff: 1})
	b.AddInto(acc, acc, ld)
	g := buildGraph(l, cfg)
	inc := serialSchedule(g, cfg, nil)
	res, err := Schedule(context.Background(), ScheduleInput{Graph: g, Cfg: cfg, Incumbent: inc})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Proven || !res.Improved {
		t.Fatalf("proven=%v improved=%v, want both", res.Proven, res.Improved)
	}
	if res.Schedule.II != g.RecMII() {
		t.Fatalf("II = %d, want RecMII %d", res.Schedule.II, g.RecMII())
	}
	if err := modulo.Check(res.Schedule, g, cfg, modulo.Options{}); err != nil {
		t.Fatalf("exact schedule fails the verifier: %v", err)
	}
}

func TestScheduleBudgetReturnsIncumbent(t *testing.T) {
	cfg := machine.Ideal16()
	g := buildGraph(triad(), cfg)
	inc := serialSchedule(g, cfg, nil)
	res, err := Schedule(context.Background(), ScheduleInput{Graph: g, Cfg: cfg, Incumbent: inc, NodeBudget: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Proven || res.Improved {
		t.Fatalf("proven=%v improved=%v on a 1-node budget, want neither", res.Proven, res.Improved)
	}
	if res.Schedule != inc {
		t.Fatal("budget expiry must hand back the incumbent untouched")
	}
}

func TestScheduleExpiredContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := machine.Ideal16()
	g := buildGraph(triad(), cfg)
	inc := serialSchedule(g, cfg, nil)
	res, err := Schedule(ctx, ScheduleInput{Graph: g, Cfg: cfg, Incumbent: inc})
	if err != nil {
		t.Fatal(err)
	}
	if res.Schedule != inc {
		t.Fatal("expired context must hand back the incumbent")
	}
	if res.Proven || res.Nodes != 0 {
		t.Fatalf("proven=%v nodes=%d under an already-expired context, want unproven with 0", res.Proven, res.Nodes)
	}
}

func TestScheduleOversizedLoopKeepsCertificate(t *testing.T) {
	cfg := machine.Ideal16()
	l := ir.NewLoop("big")
	b := ir.NewLoopBuilder(l)
	for k := 0; k < DefaultMaxOps+10; k++ {
		b.Load(ir.Int, ir.MemRef{Base: "a", Coeff: 64, Offset: k})
	}
	g := buildGraph(l, cfg)
	inc := serialSchedule(g, cfg, nil)
	res, err := Schedule(context.Background(), ScheduleInput{Graph: g, Cfg: cfg, Incumbent: inc})
	if err != nil {
		t.Fatal(err)
	}
	if res.Proven || res.Nodes != 0 {
		t.Fatalf("oversized loop should skip the search (proven=%v nodes=%d)", res.Proven, res.Nodes)
	}
	if res.MinII < 1 {
		t.Fatalf("MinII = %d", res.MinII)
	}
	// With MaxOps lifted the same loop is searchable.
	res, err = Schedule(context.Background(), ScheduleInput{Graph: g, Cfg: cfg, Incumbent: inc, MaxOps: -1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Proven || !res.Improved {
		t.Fatalf("proven=%v improved=%v with MaxOps=-1, want both", res.Proven, res.Improved)
	}
	if err := modulo.Check(res.Schedule, g, cfg, modulo.Options{}); err != nil {
		t.Fatalf("exact schedule fails the verifier: %v", err)
	}
}

func TestScheduleErrors(t *testing.T) {
	cfg := machine.Ideal16()
	g := buildGraph(triad(), cfg)
	inc := serialSchedule(g, cfg, nil)
	ctx := context.Background()
	if _, err := Schedule(ctx, ScheduleInput{Cfg: cfg, Incumbent: inc}); err == nil {
		t.Error("nil graph accepted")
	}
	if _, err := Schedule(ctx, ScheduleInput{Graph: g, Incumbent: inc}); err == nil {
		t.Error("nil config accepted")
	}
	if _, err := Schedule(ctx, ScheduleInput{Graph: g, Cfg: cfg}); err == nil {
		t.Error("nil incumbent accepted")
	}
	short := &modulo.Schedule{II: 3, Time: []int{0}, Cluster: []int{0}}
	if _, err := Schedule(ctx, ScheduleInput{Graph: g, Cfg: cfg, Incumbent: short}); err == nil {
		t.Error("short incumbent accepted")
	}
	ccfg := machine.MustClustered16(4, machine.Embedded)
	cg := buildGraph(triad(), ccfg)
	cinc := serialSchedule(cg, ccfg, []int{0, 0, 0, 0, 0})
	if _, err := Schedule(ctx, ScheduleInput{Graph: cg, Cfg: ccfg, Incumbent: cinc}); err == nil {
		t.Error("clustered config without pinning accepted")
	}
	if _, err := Schedule(ctx, ScheduleInput{
		Graph: cg, Cfg: ccfg, Incumbent: cinc,
		ClusterOf: []int{0, 0, 0, 0, modulo.AnyCluster},
	}); err == nil {
		t.Error("AnyCluster pinning accepted")
	}
}
