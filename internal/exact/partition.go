package exact

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/ir"
)

// PartitionInput describes one exact bank-assignment problem. The solver
// maximizes the total weight of RCG edges whose endpoints share a bank —
// the same signed objective the greedy heuristic of Figure 4 climbs:
// positive (affinity) edges kept together avoid inter-bank copies,
// negative (anti-affinity) edges kept apart preserve issue parallelism,
// and the per-bank Capacity bounds how much architectural pressure any
// bank absorbs (the spill guard). Minus-infinity edges (core.Constrain)
// are hard "never the same bank" constraints; plus-infinity edges are
// hard "always the same bank" constraints. Neither kind enters the
// objective sum.
type PartitionInput struct {
	// Graph is the sealed register component graph.
	Graph *core.RCG
	// Banks is the number of register banks (≥ 1).
	Banks int
	// Capacity caps registers per bank; ≤ 0 means unlimited. When the
	// graph cannot fit (nodes > Banks·Capacity, or pre-coloring already
	// overfills a bank) the cap is ignored rather than making the search
	// vacuously infeasible.
	Capacity int
	// Pre pins registers to fixed banks before the search (the paper's
	// pre-coloring hook); pinned registers are never moved.
	Pre map[ir.Reg]int
	// Incumbent optionally seeds the search with a known assignment
	// (typically the greedy result). The search only reports Improved when
	// it beats the incumbent strictly; on budget or context expiry the
	// incumbent is returned unchanged.
	Incumbent *core.Assignment
	// NodeBudget caps search nodes (one node = one bank tried for one
	// register); ≤ 0 means DefaultPartitionNodes. The budget, not the
	// context, is what keeps results deterministic.
	NodeBudget int64
}

// PartitionResult reports the outcome of one exact bank-assignment search.
type PartitionResult struct {
	// Assignment is the best known assignment: the solver's optimum when
	// the search finished (or improved the incumbent before expiring),
	// otherwise the incumbent. Nil only when no incumbent was given and
	// the budget expired before the first leaf.
	Assignment *core.Assignment
	// Objective is Assignment's same-bank edge-weight sum (-Inf for an
	// incumbent that violates a hard constraint).
	Objective float64
	// IncumbentObjective is the incumbent's objective under the same
	// scoring (-Inf when no incumbent was given).
	IncumbentObjective float64
	// Proven reports that the search exhausted the tree: Assignment is
	// optimal. False means the node budget or context expired first.
	Proven bool
	// Improved reports that the search found an assignment strictly
	// better than the incumbent.
	Improved bool
	// Nodes is how many search nodes were expanded.
	Nodes int64
}

// errAbort stops the DFS when the budget or context expires; it never
// escapes Partition.
var errAbort = errors.New("exact: search aborted")

// partEdge is one undirected RCG edge in the solver's working form.
type partEdge struct {
	a, b int
	w    float64 // finite contribution; 0 for hard edges
	hard int8    // 0 soft, +1 must share, -1 must differ
}

// partSearch is the DFS state for one Partition call.
type partSearch struct {
	ctx      context.Context
	banks    int
	capacity int // 0 = unlimited
	order    []int
	pos      []int // node -> order position, -1 for pre-pinned
	// adjacency restricted to edges touching at least one branched node
	adjOff  []int32
	adjDst  []int32
	adjW    []float64
	adjHard []int8
	suffix  []float64 // suffix[p]: optimistic value of edges undecided at depth p
	bankOf  []int     // node -> bank, -1 unassigned
	counts  []int     // registers per bank (incl. pre)
	bestOf  []int
	bestObj float64
	found   bool
	budget  int64
	nodes   int64
}

// Partition searches for the optimal bank assignment of in.Graph by
// branch and bound. Registers are branched in decreasing order of
// incident edge magnitude (the most constrained first), candidate banks
// are limited to banks already in use plus one fresh bank (unused banks
// are interchangeable, so trying more than one is pure symmetry), and a
// subtree is pruned when the current value plus an optimistic bound on
// all undecided edges cannot beat the best known assignment. The
// incumbent seeds that bound, so the search never does work the greedy
// answer already rules out.
//
// The search is anytime: on node-budget or context expiry it returns the
// best known assignment with Proven == false. ctx errors are never
// returned as errors — cancellation is a quality degradation, not a
// failure (the PR-3 contract for portfolio arms).
func Partition(ctx context.Context, in PartitionInput) (*PartitionResult, error) {
	g := in.Graph
	if g == nil {
		return nil, errors.New("exact: nil graph")
	}
	if in.Banks < 1 {
		return nil, fmt.Errorf("exact: cannot partition into %d banks", in.Banks)
	}
	n := len(g.Nodes)
	s := &partSearch{
		ctx:     ctx,
		banks:   in.Banks,
		bankOf:  make([]int, n),
		counts:  make([]int, in.Banks),
		pos:     make([]int, n),
		budget:  in.NodeBudget,
		bestObj: math.Inf(-1),
	}
	if s.budget <= 0 {
		s.budget = DefaultPartitionNodes
	}
	for i := range s.bankOf {
		s.bankOf[i] = -1
	}
	for r, b := range in.Pre {
		if b < 0 || b >= in.Banks {
			return nil, fmt.Errorf("exact: pre-colored register %s to bank %d of %d", r, b, in.Banks)
		}
		if i, ok := g.NodeIndex(r); ok {
			s.bankOf[i] = b
			s.counts[b]++
		}
	}

	// Per-bank capacity, dropped when it cannot possibly hold the graph.
	if c := in.Capacity; c > 0 && n <= in.Banks*c {
		s.capacity = c
		for _, cnt := range s.counts {
			if cnt > c {
				s.capacity = 0
				break
			}
		}
	}

	edges := collectEdges(g)
	incObj := assignmentObjective(g, edges, in.Incumbent, s.capacity)

	// Branch order: decreasing total finite edge magnitude (most
	// constrained first), ties by node weight then index — deterministic.
	mag := make([]float64, n)
	for _, e := range edges {
		if e.hard == 0 {
			mag[e.a] += math.Abs(e.w)
			mag[e.b] += math.Abs(e.w)
		}
	}
	for i := 0; i < n; i++ {
		s.pos[i] = -1
		if s.bankOf[i] < 0 {
			s.order = append(s.order, i)
		}
	}
	sort.Slice(s.order, func(x, y int) bool {
		a, b := s.order[x], s.order[y]
		if mag[a] != mag[b] {
			return mag[a] > mag[b]
		}
		if g.NodeWeight[a] != g.NodeWeight[b] {
			return g.NodeWeight[a] > g.NodeWeight[b]
		}
		return a < b
	})
	for p, v := range s.order {
		s.pos[v] = p
	}
	s.buildAdjacency(n, edges)
	s.buildSuffix(edges)

	// Seed the bound with the incumbent so the DFS only explores subtrees
	// that can strictly beat it.
	if in.Incumbent != nil && !math.IsInf(incObj, -1) {
		s.bestObj = incObj
	}

	// The base value covers edges already decided by pre-coloring alone.
	base := 0.0
	for _, e := range edges {
		if e.hard == 0 && s.pos[e.a] < 0 && s.pos[e.b] < 0 &&
			s.bankOf[e.a] == s.bankOf[e.b] {
			base += e.w
		}
	}

	// An already-expired context returns the incumbent immediately — the
	// in-search poll only fires every 1024 nodes, and the cancellation
	// contract promises no work at all once the deadline is gone.
	proven := false
	if ctx.Err() == nil {
		proven = s.dfs(0, base) == nil
	}

	res := &PartitionResult{
		IncumbentObjective: incObj,
		Proven:             proven,
		Nodes:              s.nodes,
	}
	if s.found {
		asg := &core.Assignment{Banks: in.Banks, Of: make(map[ir.Reg]int, n+len(in.Pre))}
		// Registers pre-colored but absent from the graph still belong in
		// the assignment (the greedy engine keeps them too).
		for r, b := range in.Pre {
			asg.Of[r] = b
		}
		for i, r := range g.Nodes {
			asg.Of[r] = s.bestOf[i]
		}
		res.Assignment = asg
		res.Objective = s.bestObj
		res.Improved = true
	} else {
		res.Assignment = in.Incumbent
		res.Objective = incObj
	}
	return res, nil
}

// Objective scores asg against g: the sum of finite edge weights whose
// endpoints share a bank, or -Inf when asg violates a hard constraint
// (a -Inf edge within one bank, a +Inf edge across banks). Exported for
// the differential tests and FuzzExactPartition, which cross-check that
// the exact answer never scores below greedy.
func Objective(g *core.RCG, asg *core.Assignment) float64 {
	return assignmentObjective(g, collectEdges(g), asg, 0)
}

// collectEdges snapshots the graph's undirected edges in deterministic
// order, classifying hard (±Inf) constraints.
func collectEdges(g *core.RCG) []partEdge {
	edges := make([]partEdge, 0, g.NumEdges())
	g.ForEachEdge(func(a, b int, w float64) {
		e := partEdge{a: a, b: b, w: w}
		switch {
		case math.IsInf(w, -1):
			e.w, e.hard = 0, -1
		case math.IsInf(w, 1):
			e.w, e.hard = 0, 1
		}
		edges = append(edges, e)
	})
	return edges
}

// assignmentObjective scores asg over the snapshot edges; capacity > 0
// additionally treats an overfull bank as infeasible.
func assignmentObjective(g *core.RCG, edges []partEdge, asg *core.Assignment, capacity int) float64 {
	if asg == nil {
		return math.Inf(-1)
	}
	obj := 0.0
	for _, e := range edges {
		same := asg.Bank(g.Nodes[e.a]) == asg.Bank(g.Nodes[e.b])
		switch {
		case e.hard < 0 && same, e.hard > 0 && !same:
			return math.Inf(-1)
		case e.hard == 0 && same:
			obj += e.w
		}
	}
	if capacity > 0 {
		counts := make([]int, asg.Banks)
		for _, r := range g.Nodes {
			if b := asg.Bank(r); b >= 0 && b < asg.Banks {
				counts[b]++
				if counts[b] > capacity {
					return math.Inf(-1)
				}
			}
		}
	}
	return obj
}

// buildAdjacency lays out, per node, the edges that connect it to a node
// branched earlier or pre-pinned — the only edges whose value is decided
// the moment the node picks a bank.
func (s *partSearch) buildAdjacency(n int, edges []partEdge) {
	deg := make([]int32, n+1)
	at := func(e partEdge) int {
		// The edge is decided when its later-branched endpoint is placed.
		pa, pb := s.pos[e.a], s.pos[e.b]
		if pa < 0 && pb < 0 {
			return -1 // both pre-pinned: part of the base value
		}
		if pa > pb {
			return e.a
		}
		return e.b
	}
	for _, e := range edges {
		if v := at(e); v >= 0 {
			deg[v+1]++
		}
	}
	for i := 0; i < n; i++ {
		deg[i+1] += deg[i]
	}
	s.adjOff = deg
	m := deg[n]
	s.adjDst = make([]int32, m)
	s.adjW = make([]float64, m)
	s.adjHard = make([]int8, m)
	fill := make([]int32, n)
	copy(fill, deg[:n])
	for _, e := range edges {
		v := at(e)
		if v < 0 {
			continue
		}
		o := e.a + e.b - v
		k := fill[v]
		s.adjDst[k] = int32(o)
		s.adjW[k] = e.w
		s.adjHard[k] = e.hard
		fill[v]++
	}
}

// buildSuffix computes, for every depth p, the optimistic total of soft
// edges still undecided when order[p] is about to be placed: each such
// edge contributes max(w, 0) (keep positive edges together, split
// negative ones — the best any completion could do).
func (s *partSearch) buildSuffix(edges []partEdge) {
	np := len(s.order)
	s.suffix = make([]float64, np+1)
	byDepth := make([]float64, np)
	for _, e := range edges {
		if e.hard != 0 {
			continue
		}
		d := s.pos[e.a]
		if p := s.pos[e.b]; p > d {
			d = p
		}
		if d >= 0 && e.w > 0 {
			byDepth[d] += e.w
		}
	}
	for p := np - 1; p >= 0; p-- {
		s.suffix[p] = s.suffix[p+1] + byDepth[p]
	}
}

// dfs places order[p:] given the running value cur of all decided soft
// edges. Returns errAbort when the budget or context expires.
func (s *partSearch) dfs(p int, cur float64) error {
	if p == len(s.order) {
		if cur > s.bestObj {
			s.bestObj = cur
			s.found = true
			if s.bestOf == nil {
				s.bestOf = make([]int, len(s.bankOf))
			}
			copy(s.bestOf, s.bankOf)
		}
		return nil
	}
	if cur+s.suffix[p] <= s.bestObj {
		return nil // even a perfect completion cannot beat the best
	}
	v := s.order[p]
	freshTried := false
	for b := 0; b < s.banks; b++ {
		if s.counts[b] == 0 {
			// Unused banks are interchangeable: try only the first. Later
			// banks may still be in use (pre-coloring can skip banks), so
			// keep scanning rather than stopping here.
			if freshTried {
				continue
			}
			freshTried = true
		}
		if s.capacity > 0 && s.counts[b] >= s.capacity {
			continue
		}
		s.nodes++
		if s.nodes > s.budget {
			return errAbort
		}
		if s.nodes&1023 == 0 && s.ctx.Err() != nil {
			return errAbort
		}
		delta, ok := s.place(v, b)
		if !ok {
			continue
		}
		if cur+delta+s.suffix[p+1] > s.bestObj {
			s.bankOf[v] = b
			s.counts[b]++
			err := s.dfs(p+1, cur+delta)
			s.counts[b]--
			s.bankOf[v] = -1
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// place evaluates putting v in bank b against already-placed neighbors:
// the soft-edge value delta, and false when a hard constraint forbids it.
func (s *partSearch) place(v, b int) (delta float64, ok bool) {
	for k := s.adjOff[v]; k < s.adjOff[v+1]; k++ {
		ob := s.bankOf[s.adjDst[k]]
		if ob < 0 {
			continue
		}
		switch h := s.adjHard[k]; {
		case h < 0 && ob == b, h > 0 && ob != b:
			return 0, false
		case h == 0 && ob == b:
			delta += s.adjW[k]
		}
	}
	return delta, true
}
