// Package interp gives the IR an executable semantics: it interprets loop
// bodies over concrete registers and memory. The test suite uses it as the
// strongest available oracle for the code-rewriting phases — inter-cluster
// copy insertion and modulo variable expansion must produce code that
// computes exactly what the original loop computed, store for store, on
// deterministic pseudo-random inputs.
package interp

import (
	"fmt"
	"math"

	"repro/internal/ir"
)

// Value is a machine value of either register class.
type Value struct {
	Class ir.Class
	I     int64
	F     float64
}

// String renders the value by class.
func (v Value) String() string {
	if v.Class == ir.Float {
		return fmt.Sprintf("%g", v.F)
	}
	return fmt.Sprintf("%d", v.I)
}

// StoreEvent records one executed store: which array element was written
// with what value, in program execution order. Equivalence of two loop
// versions is equality of their store logs.
type StoreEvent struct {
	Base  string
	Addr  int
	Value Value
}

// State is an interpreter instance.
type State struct {
	// Regs holds current register values.
	Regs map[ir.Reg]Value
	// Mem holds sparse array contents, lazily materialized from the seed.
	Mem map[string]map[int]Value
	// Stores logs every executed store in order.
	Stores []StoreEvent
	seed   int64
}

// New returns a state whose uninitialized memory and live-in registers
// read as deterministic pseudo-random values derived from seed — the same
// seed always produces the same execution.
func New(seed int64) *State {
	return &State{
		Regs: make(map[ir.Reg]Value),
		Mem:  make(map[string]map[int]Value),
		seed: seed,
	}
}

// hash64 mixes bits (splitmix64 finalizer).
func hash64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

func (s *State) memCell(base string, addr int, class ir.Class) Value {
	arr := s.Mem[base]
	if arr == nil {
		arr = make(map[int]Value)
		s.Mem[base] = arr
	}
	if v, ok := arr[addr]; ok {
		return v
	}
	h := uint64(s.seed)
	for _, c := range base {
		h = hash64(h ^ uint64(c))
	}
	h = hash64(h ^ uint64(int64(addr)))
	v := valueFromBits(h, class)
	arr[addr] = v
	return v
}

// valueFromBits derives a small, well-conditioned value (avoiding
// overflow-order effects and float rounding divergence between
// algebraically identical programs).
func valueFromBits(h uint64, class ir.Class) Value {
	if class == ir.Float {
		return Value{Class: ir.Float, F: float64(h%2048)/64.0 + 0.5}
	}
	return Value{Class: ir.Int, I: int64(h % 4096)}
}

// LiveInValue returns (and fixes) the deterministic initial value of a
// live-in register.
func (s *State) LiveInValue(r ir.Reg) Value {
	if v, ok := s.Regs[r]; ok {
		return v
	}
	v := valueFromBits(hash64(uint64(s.seed)^uint64(r.ID)<<1|uint64(r.Class)), r.Class)
	s.Regs[r] = v
	return v
}

// RunLoop interprets the block as a loop body executed for trip
// iterations, with the induction variable i ranging 0..trip-1 in memory
// subscripts Base[Coeff*i+Offset].
func (s *State) RunLoop(b *ir.Block, trip int) error {
	for i := 0; i < trip; i++ {
		if err := s.runIteration(b, i); err != nil {
			return fmt.Errorf("interp: iteration %d: %w", i, err)
		}
	}
	return nil
}

func (s *State) runIteration(b *ir.Block, iter int) error {
	for _, op := range b.Ops {
		if err := s.exec(op, iter); err != nil {
			return fmt.Errorf("op %d (%s): %w", op.ID, op, err)
		}
	}
	return nil
}

func (s *State) use(r ir.Reg) Value {
	if v, ok := s.Regs[r]; ok {
		return v
	}
	return s.LiveInValue(r)
}

func (s *State) exec(op *ir.Op, iter int) error {
	addr := 0
	if op.Mem != nil {
		addr = op.Mem.Coeff*iter + op.Mem.Offset
	}
	switch op.Code {
	case ir.Load:
		s.Regs[op.Def()] = s.memCell(op.Mem.Base, addr, op.Class)
	case ir.Store:
		v := s.use(op.Uses[0])
		arr := s.Mem[op.Mem.Base]
		if arr == nil {
			arr = make(map[int]Value)
			s.Mem[op.Mem.Base] = arr
		}
		arr[addr] = v
		s.Stores = append(s.Stores, StoreEvent{Base: op.Mem.Base, Addr: addr, Value: v})
	case ir.LoadImm:
		if op.Class == ir.Float {
			s.Regs[op.Def()] = Value{Class: ir.Float, F: float64(op.Imm)}
		} else {
			s.Regs[op.Def()] = Value{Class: ir.Int, I: op.Imm}
		}
	case ir.Copy:
		s.Regs[op.Def()] = s.use(op.Uses[0])
	case ir.Cvt:
		v := s.use(op.Uses[0])
		if op.Class == ir.Float {
			s.Regs[op.Def()] = Value{Class: ir.Float, F: float64(v.I) + v.F}
		} else {
			s.Regs[op.Def()] = Value{Class: ir.Int, I: v.I + int64(v.F)}
		}
	case ir.Neg:
		v := s.use(op.Uses[0])
		s.Regs[op.Def()] = Value{Class: op.Class, I: -v.I, F: -v.F}
	case ir.Select:
		cond := s.use(op.Uses[0])
		if cond.I != 0 {
			s.Regs[op.Def()] = s.use(op.Uses[1])
		} else {
			s.Regs[op.Def()] = s.use(op.Uses[2])
		}
	case ir.Add, ir.Sub, ir.Mul, ir.Div, ir.Cmp, ir.Shl, ir.Shr, ir.And, ir.Or, ir.Xor:
		a, bv := s.use(op.Uses[0]), s.use(op.Uses[1])
		s.Regs[op.Def()] = binary(op.Code, op.Class, a, bv)
	default:
		return fmt.Errorf("interp: unsupported opcode %s", op.Code)
	}
	return nil
}

func binary(code ir.Opcode, class ir.Class, a, b Value) Value {
	if class == ir.Float {
		var f float64
		switch code {
		case ir.Add:
			f = a.F + b.F
		case ir.Sub:
			f = a.F - b.F
		case ir.Mul:
			f = a.F * b.F
		case ir.Div:
			if b.F == 0 {
				f = 0
			} else {
				f = a.F / b.F
			}
		case ir.Cmp:
			return Value{Class: ir.Int, I: boolToInt(a.F > b.F)}
		default:
			f = math.NaN() // integer-only ops never reach here in valid IR
		}
		return Value{Class: ir.Float, F: f}
	}
	var i int64
	switch code {
	case ir.Add:
		i = a.I + b.I
	case ir.Sub:
		i = a.I - b.I
	case ir.Mul:
		i = a.I * b.I
	case ir.Div:
		if b.I == 0 {
			i = 0
		} else {
			i = a.I / b.I
		}
	case ir.Cmp:
		i = boolToInt(a.I > b.I)
	case ir.Shl:
		i = a.I << (uint64(b.I) & 63)
	case ir.Shr:
		i = int64(uint64(a.I) >> (uint64(b.I) & 63))
	case ir.And:
		i = a.I & b.I
	case ir.Or:
		i = a.I | b.I
	case ir.Xor:
		i = a.I ^ b.I
	}
	return Value{Class: ir.Int, I: i}
}

func boolToInt(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// SeedLiveIns fixes the live-in registers of a block so two executions
// (e.g. the original body and a rewritten one that shares the same
// original registers) start identically.
func (s *State) SeedLiveIns(b *ir.Block) {
	for _, r := range b.LiveIns() {
		s.LiveInValue(r)
	}
}

// SameStores compares two store logs for exact equality.
func SameStores(a, b []StoreEvent) error {
	if len(a) != len(b) {
		return fmt.Errorf("interp: %d stores vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			return fmt.Errorf("interp: store %d differs: %v vs %v", i, a[i], b[i])
		}
	}
	return nil
}
