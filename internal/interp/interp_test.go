package interp

import (
	"testing"

	"repro/internal/ir"
)

func TestDeterministicMemoryAndLiveIns(t *testing.T) {
	a := New(7)
	b := New(7)
	r := ir.Reg{ID: 3, Class: ir.Float}
	if a.LiveInValue(r) != b.LiveInValue(r) {
		t.Error("same seed, different live-in value")
	}
	if a.memCell("x", 5, ir.Int) != b.memCell("x", 5, ir.Int) {
		t.Error("same seed, different memory value")
	}
	c := New(8)
	if a.LiveInValue(r) == c.LiveInValue(r) && a.memCell("x", 6, ir.Int) == c.memCell("x", 6, ir.Int) {
		t.Error("different seeds produced identical state (suspicious)")
	}
}

func TestRunLoopComputes(t *testing.T) {
	// s += a[i] over 4 iterations with known memory contents.
	l := ir.NewLoop("sum")
	b := ir.NewLoopBuilder(l)
	acc := l.NewReg(ir.Int)
	ld := b.Load(ir.Int, ir.MemRef{Base: "a", Coeff: 1})
	b.AddInto(acc, acc, ld)
	b.Store(acc, ir.MemRef{Base: "out", Coeff: 1})

	st := New(1)
	st.Regs[acc] = Value{Class: ir.Int, I: 0}
	for i := 0; i < 4; i++ {
		st.Mem["a"] = map[int]Value{}
	}
	st.Mem["a"] = map[int]Value{
		0: {Class: ir.Int, I: 1}, 1: {Class: ir.Int, I: 2},
		2: {Class: ir.Int, I: 3}, 3: {Class: ir.Int, I: 4},
	}
	if err := st.RunLoop(l.Body, 4); err != nil {
		t.Fatal(err)
	}
	if got := st.Regs[acc].I; got != 10 {
		t.Errorf("sum = %d, want 10", got)
	}
	if len(st.Stores) != 4 {
		t.Fatalf("%d stores", len(st.Stores))
	}
	wantPartials := []int64{1, 3, 6, 10}
	for i, ev := range st.Stores {
		if ev.Base != "out" || ev.Addr != i || ev.Value.I != wantPartials[i] {
			t.Errorf("store %d = %+v", i, ev)
		}
	}
}

func TestIntegerOps(t *testing.T) {
	mk := func(i int64) Value { return Value{Class: ir.Int, I: i} }
	tests := []struct {
		code ir.Opcode
		a, b int64
		want int64
	}{
		{ir.Add, 3, 4, 7},
		{ir.Sub, 3, 4, -1},
		{ir.Mul, 3, 4, 12},
		{ir.Div, 12, 4, 3},
		{ir.Div, 12, 0, 0}, // guarded
		{ir.Cmp, 5, 4, 1},
		{ir.Cmp, 4, 5, 0},
		{ir.Shl, 1, 4, 16},
		{ir.Shr, 16, 4, 1},
		{ir.And, 6, 3, 2},
		{ir.Or, 6, 3, 7},
		{ir.Xor, 6, 3, 5},
	}
	for _, tt := range tests {
		got := binary(tt.code, ir.Int, mk(tt.a), mk(tt.b))
		if got.I != tt.want {
			t.Errorf("%s(%d, %d) = %d, want %d", tt.code, tt.a, tt.b, got.I, tt.want)
		}
	}
}

func TestFloatOps(t *testing.T) {
	mk := func(f float64) Value { return Value{Class: ir.Float, F: f} }
	if got := binary(ir.Mul, ir.Float, mk(2.5), mk(4)).F; got != 10 {
		t.Errorf("fmul = %f", got)
	}
	if got := binary(ir.Div, ir.Float, mk(1), mk(0)).F; got != 0 {
		t.Errorf("guarded fdiv = %f", got)
	}
}

func TestUnaryAndConversionOps(t *testing.T) {
	l := ir.NewLoop("u")
	b := ir.NewLoopBuilder(l)
	i := b.Imm(ir.Int, 9)
	f := b.Cvt(ir.Float, i)
	nf := b.Neg(f)
	fi := b.Cvt(ir.Int, nf)
	fimm := b.Imm(ir.Float, 3)
	cp := b.Copy(fimm)
	sel := b.Select(i, fi, i)
	b.Store(sel, ir.MemRef{Base: "out"})
	_ = cp
	st := New(4)
	if err := st.RunLoop(l.Body, 1); err != nil {
		t.Fatal(err)
	}
	if got := st.Regs[f]; got.F != 9 {
		t.Errorf("cvt int->float = %v", got)
	}
	if got := st.Regs[nf]; got.F != -9 {
		t.Errorf("neg = %v", got)
	}
	if got := st.Regs[fi]; got.I != -9 {
		t.Errorf("cvt float->int = %v", got)
	}
	if got := st.Regs[cp]; got.F != 3 {
		t.Errorf("copy of float imm = %v", got)
	}
	if got := st.Stores[0].Value.I; got != -9 {
		t.Errorf("select(true) stored %d, want -9", got)
	}
}

func TestSelectFalseArm(t *testing.T) {
	l := ir.NewLoop("s")
	b := ir.NewLoopBuilder(l)
	zero := b.Imm(ir.Int, 0)
	a := b.Imm(ir.Int, 7)
	c := b.Imm(ir.Int, 8)
	sel := b.Select(zero, a, c)
	b.Store(sel, ir.MemRef{Base: "out"})
	st := New(1)
	if err := st.RunLoop(l.Body, 1); err != nil {
		t.Fatal(err)
	}
	if st.Stores[0].Value.I != 8 {
		t.Errorf("select(false) = %v", st.Stores[0].Value)
	}
}

func TestValueString(t *testing.T) {
	if (Value{Class: ir.Float, F: 2.5}).String() != "2.5" {
		t.Error("float rendering")
	}
	if (Value{Class: ir.Int, I: -3}).String() != "-3" {
		t.Error("int rendering")
	}
}

func TestFloatCmpAndShifts(t *testing.T) {
	if binary(ir.Cmp, ir.Float, Value{F: 2}, Value{F: 1}).I != 1 {
		t.Error("float cmp true")
	}
	if binary(ir.Cmp, ir.Float, Value{F: 1}, Value{F: 2}).I != 0 {
		t.Error("float cmp false")
	}
	if got := binary(ir.Shl, ir.Int, Value{I: 1}, Value{I: 100}).I; got != 1<<36 {
		t.Errorf("shift amount must mask to 6 bits (100&63=36): got %d", got)
	}
}

func TestRunLoopErrorsOnUnknownOpcode(t *testing.T) {
	b := &ir.Block{}
	b.Append(&ir.Op{Code: ir.Nop})
	st := New(1)
	if err := st.RunLoop(b, 1); err == nil {
		t.Error("nop executed")
	}
}

func TestSameStores(t *testing.T) {
	a := []StoreEvent{{Base: "x", Addr: 1, Value: Value{I: 2}}}
	b := []StoreEvent{{Base: "x", Addr: 1, Value: Value{I: 2}}}
	if err := SameStores(a, b); err != nil {
		t.Error(err)
	}
	b[0].Addr = 2
	if err := SameStores(a, b); err == nil {
		t.Error("differing logs accepted")
	}
	if err := SameStores(a, nil); err == nil {
		t.Error("length mismatch accepted")
	}
}
