// Package scratch provides the compile pipeline's per-compile scratch
// arena: a container for the reusable working buffers of every stage
// (dependence analysis, modulo scheduling, RCG construction, partitioning,
// live-range extraction, coloring, copy insertion), recycled through a
// sync.Pool so repeated compiles — the experiment suite's worker pool, the
// portfolio partitioner's candidate sweep, the swpd server's request loop —
// reuse allocations instead of re-making them.
//
// An Arena is single-threaded: it belongs to exactly one compilation at a
// time. Concurrent compiles each take their own arena from the shared pool
// (Get/Release); a caller that wants to pin reuse to one goroutine can
// instead own an Arena and pass it through codegen.Config.Scratch.
//
// Lifetime rules (see DESIGN.md §10):
//
//   - Stage scratch stored in an arena slot may retain its buffers across
//     compiles; every stage must re-initialize the prefix it reads before
//     use (scratch is dirty on arrival).
//   - Nothing reachable from a stage's *result* may alias arena memory:
//     results are retained by callers (and by the compile cache) long after
//     the arena has moved on to another compilation, so result slices are
//     always freshly allocated or copied out of scratch.
package scratch

import "sync"

// Slot names one stage's cached scratch inside an Arena. Each stage
// package owns one slot and stores its private scratch type there, so the
// arena needs no knowledge of stage internals.
type Slot int

// The stage slots. NumSlots bounds the arena's slot array.
const (
	// DDG is dependence-graph construction scratch (internal/ddg).
	DDG Slot = iota
	// MinII is the RecMII Bellman-Ford relaxation buffer (internal/ddg).
	MinII
	// Modulo is the iterative modulo scheduler's attempt state
	// (internal/modulo).
	Modulo
	// Sched is the list scheduler's slot table (internal/sched).
	Sched
	// RCG is register-component-graph build scratch (internal/core).
	RCG
	// Partition is the greedy partitioner's working arrays (internal/core).
	Partition
	// Ranges is live-range extraction scratch (internal/regalloc).
	Ranges
	// Color is the Chaitin/Briggs allocator's bitsets and work arrays
	// (internal/regalloc).
	Color
	// Copies is copy insertion's dense availability table
	// (internal/codegen).
	Copies
	// NumSlots is the number of defined slots.
	NumSlots
)

// Arena carries one compilation's reusable stage scratch. The zero value
// is ready to use; Get/Release recycle arenas (and everything cached in
// their slots) through a process-wide pool.
type Arena struct {
	slots [NumSlots]any
}

var pool = sync.Pool{New: func() any { return new(Arena) }}

// Get takes an arena from the shared pool. Pair with Release.
func Get() *Arena { return pool.Get().(*Arena) }

// Release returns the arena — with whatever stage scratch its slots have
// accumulated — to the shared pool for the next compilation.
func (a *Arena) Release() {
	if a != nil {
		pool.Put(a)
	}
}

// Slot returns the scratch cached for s, or nil when the slot is empty.
func (a *Arena) Slot(s Slot) any {
	if a == nil {
		return nil
	}
	return a.slots[s]
}

// SetSlot caches v as the scratch for s. A nil arena ignores the call, so
// stages can set unconditionally after a nil-tolerant Slot lookup.
func (a *Arena) SetSlot(s Slot, v any) {
	if a != nil {
		a.slots[s] = v
	}
}

// For fetches the stage scratch cached in slot s, creating it with mk on
// first use of the arena by that stage. With a nil arena it returns
// (nil, false) and the stage falls back to its own pool.
func For[T any](a *Arena, s Slot, mk func() *T) (*T, bool) {
	if a == nil {
		return nil, false
	}
	if v, ok := a.slots[s].(*T); ok {
		return v, true
	}
	v := mk()
	a.slots[s] = v
	return v, true
}

// Ints returns buf re-sliced to length n, growing it when needed. The
// contents are NOT zeroed — callers that need a cleared prefix must reset
// it themselves (most stages overwrite or fill with a sentinel anyway).
func Ints(buf []int, n int) []int {
	if cap(buf) < n {
		return make([]int, n, grow(n))
	}
	return buf[:n]
}

// Int32s is Ints for []int32.
func Int32s(buf []int32, n int) []int32 {
	if cap(buf) < n {
		return make([]int32, n, grow(n))
	}
	return buf[:n]
}

// Int64s is Ints for []int64.
func Int64s(buf []int64, n int) []int64 {
	if cap(buf) < n {
		return make([]int64, n, grow(n))
	}
	return buf[:n]
}

// Float64s is Ints for []float64.
func Float64s(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n, grow(n))
	}
	return buf[:n]
}

// Bools is Ints for []bool.
func Bools(buf []bool, n int) []bool {
	if cap(buf) < n {
		return make([]bool, n, grow(n))
	}
	return buf[:n]
}

// Words is Ints for []uint64 (bitset backing).
func Words(buf []uint64, n int) []uint64 {
	if cap(buf) < n {
		return make([]uint64, n, grow(n))
	}
	return buf[:n]
}

// FillInts sets every element of s to v (a memset the compiler optimizes).
func FillInts(s []int, v int) {
	for i := range s {
		s[i] = v
	}
}

// ZeroBools clears s.
func ZeroBools(s []bool) {
	for i := range s {
		s[i] = false
	}
}

// ZeroWords clears s.
func ZeroWords(s []uint64) {
	for i := range s {
		s[i] = 0
	}
}

// grow rounds a requested capacity up so that a sequence of slightly
// increasing requests (the suite's loops vary in size) settles after a few
// reallocations instead of reallocating per compile.
func grow(n int) int {
	c := 16
	for c < n {
		c *= 2
	}
	return c
}
