package scratch

import "testing"

// Unit tests for the arena's slot and buffer contracts. The lifetime rules
// the stages rely on (DESIGN.md §10): slots cache stage scratch across
// compiles, buffers keep their capacity but arrive dirty, and a nil arena
// degrades to "no cache" so stages can fall back to their own pools.

type fakeScratch struct{ buf []int }

func TestForNilArenaFallsBack(t *testing.T) {
	sc, owned := For[fakeScratch](nil, DDG, func() *fakeScratch { return new(fakeScratch) })
	if sc != nil || owned {
		t.Fatalf("For(nil arena) = (%v, %v), want (nil, false)", sc, owned)
	}
}

func TestForCachesPerSlot(t *testing.T) {
	a := new(Arena)
	mk := func() *fakeScratch { return new(fakeScratch) }
	s1, owned := For(a, DDG, mk)
	if s1 == nil || !owned {
		t.Fatal("first For did not create scratch")
	}
	s1.buf = append(s1.buf, 1, 2, 3)
	s2, _ := For(a, DDG, mk)
	if s2 != s1 {
		t.Error("second For returned a different object for the same slot")
	}
	// A different slot is independent.
	s3, _ := For(a, Color, mk)
	if s3 == s1 {
		t.Error("different slots shared scratch")
	}
}

func TestGetReleaseRecycles(t *testing.T) {
	a := Get()
	a.SetSlot(Modulo, &fakeScratch{buf: make([]int, 8)})
	a.Release()
	// Release on nil must be a no-op.
	var nilArena *Arena
	nilArena.Release()
	if v := nilArena.Slot(Modulo); v != nil {
		t.Errorf("nil arena Slot = %v", v)
	}
	// SetSlot on nil is ignored, so stages can set unconditionally.
	nilArena.SetSlot(Modulo, &fakeScratch{})
}

func TestBufferHelpersGrowAndKeepCapacity(t *testing.T) {
	b := Ints(nil, 5)
	if len(b) != 5 || cap(b) < 16 {
		t.Fatalf("Ints(nil, 5): len=%d cap=%d, want len 5 cap >= 16", len(b), cap(b))
	}
	b[4] = 42
	// Re-slicing within capacity must reuse the array (dirty contents).
	b2 := Ints(b, 3)
	if &b2[0] != &b[0] {
		t.Error("Ints reallocated within capacity")
	}
	b3 := Ints(b2, 5)
	if b3[4] != 42 {
		t.Error("Ints zeroed the buffer; contract says contents are NOT zeroed")
	}
	// Growth rounds to a power of two, settling quickly across sizes.
	g := Ints(b3, 100)
	if len(g) != 100 || cap(g) != 128 {
		t.Errorf("Ints(_, 100): len=%d cap=%d, want len 100 cap 128", len(g), cap(g))
	}

	if w := Words(nil, 70); len(w) != 70 || cap(w) != 128 {
		t.Errorf("Words(nil, 70): len=%d cap=%d", len(w), cap(w))
	}
	if f := Float64s(nil, 3); len(f) != 3 || cap(f) != 16 {
		t.Errorf("Float64s(nil, 3): len=%d cap=%d", len(f), cap(f))
	}
	if x := Int32s(nil, 17); cap(x) != 32 {
		t.Errorf("Int32s(nil, 17): cap=%d, want 32", cap(x))
	}
	if x := Int64s(nil, 16); cap(x) != 16 {
		t.Errorf("Int64s(nil, 16): cap=%d, want 16", cap(x))
	}
	if bo := Bools(nil, 1); cap(bo) != 16 {
		t.Errorf("Bools(nil, 1): cap=%d, want 16", cap(bo))
	}
}

func TestFillAndZeroHelpers(t *testing.T) {
	s := Ints(nil, 8)
	FillInts(s, -1)
	for i, v := range s {
		if v != -1 {
			t.Fatalf("FillInts: s[%d] = %d", i, v)
		}
	}
	bs := Bools(nil, 8)
	for i := range bs {
		bs[i] = true
	}
	ZeroBools(bs)
	for i, v := range bs {
		if v {
			t.Fatalf("ZeroBools: s[%d] still true", i)
		}
	}
	ws := Words(nil, 4)
	for i := range ws {
		ws[i] = ^uint64(0)
	}
	ZeroWords(ws)
	for i, v := range ws {
		if v != 0 {
			t.Fatalf("ZeroWords: s[%d] = %x", i, v)
		}
	}
}
