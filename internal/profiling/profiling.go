// Package profiling wires the standard runtime/pprof file profiles into
// the command-line tools (cmd/swpc, cmd/experiments), so any pipeline
// run can be inspected with `go tool pprof`.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// StartCPU begins writing a CPU profile to path and returns the function
// that stops the profile and closes the file. An empty path is a no-op
// (the returned stop function is still safe to call).
func StartCPU(path string) (stop func(), err error) {
	if path == "" {
		return func() {}, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("profiling: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("profiling: %w", err)
	}
	return func() {
		pprof.StopCPUProfile()
		f.Close()
	}, nil
}

// WriteHeap runs a GC and writes an allocation profile to path. An empty
// path is a no-op.
func WriteHeap(path string) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("profiling: %w", err)
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		return fmt.Errorf("profiling: %w", err)
	}
	return nil
}
