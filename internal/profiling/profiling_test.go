package profiling

import (
	"os"
	"path/filepath"
	"testing"
)

func TestEmptyPathsAreNoOps(t *testing.T) {
	stop, err := StartCPU("")
	if err != nil {
		t.Fatal(err)
	}
	stop() // must be safe to call
	if err := WriteHeap(""); err != nil {
		t.Fatal(err)
	}
}

func TestProfilesAreWritten(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.prof")
	stop, err := StartCPU(cpu)
	if err != nil {
		t.Fatal(err)
	}
	stop()
	if fi, err := os.Stat(cpu); err != nil || fi.Size() == 0 {
		t.Fatalf("cpu profile not written: %v", err)
	}
	heap := filepath.Join(dir, "mem.prof")
	if err := WriteHeap(heap); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(heap); err != nil || fi.Size() == 0 {
		t.Fatalf("heap profile not written: %v", err)
	}
}

func TestStartCPUFailsOnBadPath(t *testing.T) {
	if _, err := StartCPU(filepath.Join(t.TempDir(), "no", "such", "dir", "x")); err == nil {
		t.Fatal("expected an error for an uncreatable file")
	}
}
