package features

import (
	"testing"

	"repro/internal/core"
	"repro/internal/ddg"
	"repro/internal/ir"
	"repro/internal/machine"
)

// buildProblem assembles one small partitioning problem — the paper's dot
// product — the way the pipeline would: parse, dependence graph on the
// ideal machine, a hand-pinned ideal schedule view, RCG build.
func buildProblem(t *testing.T) (*core.RCG, core.ScheduledBlock, *ddg.Graph, *machine.Config) {
	t.Helper()
	l, err := ir.ParseLoop("dot",
		"0: load f2, a[1*i]\n1: load f3, b[1*i]\n2: mult f4, f2, f3\n3: add f1, f1, f4")
	if err != nil {
		t.Fatal(err)
	}
	ideal := machine.Ideal16()
	g := ddg.Build(l.Body, ideal, ddg.Options{Carried: true})
	sb := core.ScheduledBlock{
		Block:     l.Body,
		Time:      []int{0, 0, 1, 2},
		Length:    3,
		Slack:     []int{0, 0, 0, 0},
		Recurrent: g.RecurrenceOps(),
	}
	rcg := core.Build([]core.ScheduledBlock{sb}, core.DefaultWeights())
	return rcg, sb, g, machine.MustClustered16(4, machine.Embedded)
}

func TestExtractDeterministic(t *testing.T) {
	rcg1, sb1, g1, cfg := buildProblem(t)
	rcg2, sb2, g2, _ := buildProblem(t)
	v1 := Extract(rcg1, sb1, g1, cfg)
	v2 := Extract(rcg2, sb2, g2, cfg)
	if v1 != v2 {
		t.Fatalf("two extractions of the same problem differ:\n%+v\n%+v", v1, v2)
	}
}

func TestExtractValues(t *testing.T) {
	rcg, sb, g, cfg := buildProblem(t)
	v := Extract(rcg, sb, g, cfg)
	if v.Regs <= 0 || v.Components <= 0 || v.LargestComp <= 0 {
		t.Fatalf("degenerate structure counts: %+v", v)
	}
	if v.AffinityMass <= 0 {
		t.Errorf("dot product has def/use pairs; affinity mass %f", v.AffinityMass)
	}
	if v.AntiRatio < 0 || v.AntiRatio > 1 {
		t.Errorf("anti ratio %f out of [0,1]", v.AntiRatio)
	}
	if v.Density <= 0 {
		t.Errorf("density %f, want positive", v.Density)
	}
	if v.RecMII < 1 || v.ResMII < 1 {
		t.Errorf("II bounds must be >= 1: %+v", v)
	}
	if v.RecFraction <= 0 || v.RecFraction > 1 {
		t.Errorf("the f1 accumulation is a recurrence; fraction %f", v.RecFraction)
	}
	if v.Pressure <= 0 {
		t.Errorf("pressure proxy %f, want positive", v.Pressure)
	}
}

func TestKeyQuantization(t *testing.T) {
	cases := []struct {
		v    Vector
		want Key
	}{
		{Vector{RecFraction: 0, Density: 1, RecMII: 1, ResMII: 3}, Key{0, 0, 0}},
		{Vector{RecFraction: 0.25, Density: 3, RecMII: 2, ResMII: 2}, Key{1, 1, 1}},
		{Vector{RecFraction: 0.9, Density: 8, RecMII: 5, ResMII: 2}, Key{2, 2, 2}},
		{Vector{RecFraction: 0.5, Density: 6, RecMII: 3, ResMII: 2}, Key{2, 2, 2}},
		{Vector{RecFraction: 0.49, Density: 5.99, RecMII: 1, ResMII: 2}, Key{1, 1, 0}},
	}
	for _, c := range cases {
		if got := c.v.Key(); got != c.want {
			t.Errorf("Key(%+v) = %v, want %v", c.v, got, c.want)
		}
	}
}

func TestKeyString(t *testing.T) {
	if s := (Key{Rec: 1, Dens: 2, Bound: 0}).String(); s != "r1d2b0" {
		t.Errorf("bucket name %q, want r1d2b0", s)
	}
}

func TestLookup(t *testing.T) {
	wa, wb := core.DefaultWeights(), core.DefaultWeights()
	wa.Affinity, wb.Affinity = 3, 7
	tbl := &Table{Version: 1, Entries: []Entry{
		{Key: Key{0, 0, 0}, Weights: wa},
		{Key: Key{2, 2, 2}, Weights: wb},
	}}
	if !tbl.sorted() {
		t.Fatal("test table not sorted")
	}
	w, bucket, exact, ok := tbl.Lookup(Key{0, 0, 0})
	if !ok || !exact || bucket != "r0d0b0" || w.Affinity != 3 {
		t.Errorf("exact lookup: w=%+v bucket=%s exact=%v ok=%v", w, bucket, exact, ok)
	}
	w, bucket, exact, ok = tbl.Lookup(Key{2, 2, 1})
	if !ok || exact || bucket != "r2d2b2" || w.Affinity != 7 {
		t.Errorf("nearest lookup: w=%+v bucket=%s exact=%v ok=%v", w, bucket, exact, ok)
	}
	// Equidistant from both entries: ties break to the first in sorted
	// Key order, deterministically.
	w, bucket, exact, ok = tbl.Lookup(Key{1, 1, 1})
	if !ok || exact || bucket != "r0d0b0" || w.Affinity != 3 {
		t.Errorf("tie-break lookup: w=%+v bucket=%s exact=%v ok=%v", w, bucket, exact, ok)
	}
	if _, _, _, ok := (&Table{}).Lookup(Key{}); ok {
		t.Error("empty table lookup reported ok")
	}
	var nilTable *Table
	if _, _, _, ok := nilTable.Lookup(Key{}); ok {
		t.Error("nil table lookup reported ok")
	}
}

// TestDefaultTable pins the committed generated table's invariants: it is
// canonically sorted, keys are unique and in range, and MaxDepth — the
// one coefficient tuning never perturbs — matches the default everywhere.
func TestDefaultTable(t *testing.T) {
	tbl := Default()
	if tbl.Version < 1 {
		t.Errorf("table version %d", tbl.Version)
	}
	if !tbl.sorted() {
		t.Error("default table entries not sorted by key")
	}
	seen := map[Key]bool{}
	for _, e := range tbl.Entries {
		if seen[e.Key] {
			t.Errorf("duplicate bucket %v", e.Key)
		}
		seen[e.Key] = true
		for _, ax := range []int{e.Key.Rec, e.Key.Dens, e.Key.Bound} {
			if ax < 0 || ax > 2 {
				t.Errorf("bucket %v axis out of range", e.Key)
			}
		}
		if e.Weights.MaxDepth != core.DefaultWeights().MaxDepth {
			t.Errorf("bucket %v perturbed MaxDepth", e.Key)
		}
	}
}
