package features

import (
	"fmt"
	"sort"

	"repro/internal/core"
)

// Key is the quantized bucket key of the feature→weights table: three
// small-integer classes (each 0..2). Keys order lexicographically by
// (Rec, Dens, Bound).
type Key struct {
	// Rec classifies the recurrence-marked operation fraction:
	// 0 = none, 1 = some (< 0.5), 2 = heavy (>= 0.5).
	Rec int
	// Dens classifies DDD density (ops per ideal instruction):
	// 0 = sparse (< 2), 1 = medium (< 6), 2 = dense.
	Dens int
	// Bound says which II lower bound dominates: 0 = resource-bound
	// (RecMII < ResMII), 1 = balanced, 2 = recurrence-bound.
	Bound int
}

// String renders the key as the compact bucket name used in telemetry,
// e.g. "r1d2b0".
func (k Key) String() string { return fmt.Sprintf("r%dd%db%d", k.Rec, k.Dens, k.Bound) }

// less orders keys lexicographically.
func (k Key) less(o Key) bool {
	if k.Rec != o.Rec {
		return k.Rec < o.Rec
	}
	if k.Dens != o.Dens {
		return k.Dens < o.Dens
	}
	return k.Bound < o.Bound
}

// dist is the L1 distance between keys over the three axes — the nearest
// bucket under this metric stands in when a problem's exact bucket was
// never populated during training.
func (k Key) dist(o Key) int {
	return abs(k.Rec-o.Rec) + abs(k.Dens-o.Dens) + abs(k.Bound-o.Bound)
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// Entry maps one trained bucket to its tuned weight vector.
type Entry struct {
	Key     Key
	Weights core.Weights
	// Loops records the training-bucket population (documentation only;
	// lookup ignores it).
	Loops int
}

// Table is the versioned feature→weights table the adaptive portfolio
// arm consults. Entries are kept sorted by Key so lookup — exact match
// first, then nearest by L1 axis distance with a first-in-sorted-order
// tie-break — is deterministic. A Table is read-only after construction
// and safe for concurrent use.
type Table struct {
	// Version numbers the table format; Seed is the fixed training seed
	// the committed table regenerates from.
	Version int
	Seed    int64
	Entries []Entry
}

// sorted returns whether the entries are in strictly ascending Key order.
func (t *Table) sorted() bool {
	return sort.SliceIsSorted(t.Entries, func(i, j int) bool {
		return t.Entries[i].Key.less(t.Entries[j].Key)
	})
}

// Sort orders the entries by Key; cmd/tune calls it before emitting so
// the committed table is canonical.
func (t *Table) Sort() {
	sort.Slice(t.Entries, func(i, j int) bool {
		return t.Entries[i].Key.less(t.Entries[j].Key)
	})
}

// Lookup returns the weight vector for k: the exact bucket when trained,
// otherwise the nearest bucket by L1 axis distance (ties break to the
// first entry in sorted Key order). bucket names the matched entry for
// telemetry, exact reports whether the match was exact, and ok is false
// only for an empty table.
func (t *Table) Lookup(k Key) (w core.Weights, bucket string, exact, ok bool) {
	if t == nil || len(t.Entries) == 0 {
		return core.Weights{}, "", false, false
	}
	best, bestDist := -1, int(^uint(0)>>1)
	for i := range t.Entries {
		d := t.Entries[i].Key.dist(k)
		if d < bestDist {
			best, bestDist = i, d
		}
	}
	e := &t.Entries[best]
	return e.Weights, e.Key.String(), bestDist == 0, true
}
