// Package features extracts a deterministic per-problem feature vector
// from the sealed register component graph (RCG) and its scheduling
// context, and quantizes it into the small bucket key the adaptive
// feature→weights table is indexed by. The paper's Section 7 proposes
// off-line tuning of the greedy heuristic's coefficients; one global
// tuned vector leaves structure on the table, because which coefficients
// matter depends on the problem — a recurrence-bound loop wants its
// recurrence registers pulled together, a wide resource-bound loop wants
// balance. The features here are pure functions of the built RCG, the
// ideal schedule view and the dependence graph, so a vector is
// bit-reproducible and cacheable off the existing block fingerprint.
package features

import (
	"math"

	"repro/internal/core"
	"repro/internal/ddg"
	"repro/internal/machine"
)

// Vector is the per-problem feature vector. Every field is a
// deterministic function of the inputs; the quantized Key (see Key) uses
// only the machine-robust axes, the rest ride along for telemetry and
// training diagnostics.
type Vector struct {
	// Regs is the RCG node count (symbolic registers).
	Regs int
	// Components counts the positive-affinity connected components;
	// LargestComp and MeanComp summarize their size distribution. Many
	// small components mean the partitioner has freedom, one giant
	// component means every cut costs copies.
	Components  int
	LargestComp int
	MeanComp    float64
	// AffinityMass and AntiMass are the total positive and (absolute)
	// negative finite edge weight; AntiRatio = AntiMass / (AffinityMass +
	// AntiMass). -Inf constraint edges are excluded from the masses.
	AffinityMass float64
	AntiMass     float64
	AntiRatio    float64
	// Density is the DDD density: operations per ideal-schedule
	// instruction (Section 5's scaling term).
	Density float64
	// RecMII and ResMII are the scheduling lower bounds; BoundSlack =
	// RecMII / max(ResMII, 1) says which bound dominates (>1 means the
	// loop is recurrence-bound).
	RecMII, ResMII int
	BoundSlack     float64
	// RecFraction is the fraction of operations marked on a dependence
	// recurrence (0 when no recurrence information is present).
	RecFraction float64
	// Pressure is a register-pressure proxy: symbolic registers per
	// ideal-schedule cycle.
	Pressure float64
}

// Extract computes the feature vector of one partitioning problem: the
// built RCG g, the ideal schedule view it was built from, the dependence
// graph dg and the clustered target cfg. Pure and read-only: same inputs,
// same vector, bit for bit.
func Extract(g *core.RCG, ideal core.ScheduledBlock, dg *ddg.Graph, cfg *machine.Config) Vector {
	v := Vector{Regs: len(g.Nodes)}
	comps := g.Components()
	v.Components = len(comps)
	for _, c := range comps {
		if len(c) > v.LargestComp {
			v.LargestComp = len(c)
		}
	}
	if v.Components > 0 {
		v.MeanComp = float64(v.Regs) / float64(v.Components)
	}
	g.ForEachEdge(func(a, b int, w float64) {
		if math.IsInf(w, 0) {
			return
		}
		if w > 0 {
			v.AffinityMass += w
		} else {
			v.AntiMass += -w
		}
	})
	if mass := v.AffinityMass + v.AntiMass; mass > 0 {
		v.AntiRatio = v.AntiMass / mass
	}
	v.Density = ideal.Density()
	v.RecMII = dg.RecMII()
	v.ResMII = ddg.ResMII(len(dg.Ops), cfg.Width)
	res := v.ResMII
	if res < 1 {
		res = 1
	}
	v.BoundSlack = float64(v.RecMII) / float64(res)
	if n := len(ideal.Recurrent); n > 0 {
		marked := 0
		for _, r := range ideal.Recurrent {
			if r {
				marked++
			}
		}
		v.RecFraction = float64(marked) / float64(len(ideal.Block.Ops))
	}
	if ideal.Length > 0 {
		v.Pressure = float64(v.Regs) / float64(ideal.Length)
	}
	return v
}

// Key quantizes the vector onto the table's three bucket axes. The axes
// were chosen to be robust across machines (they move with the loop's
// structure, not the bank count): how recurrence-heavy the loop is, how
// dense its ideal schedule is, and which II lower bound dominates.
func (v Vector) Key() Key {
	k := Key{}
	switch {
	case v.RecFraction == 0:
	case v.RecFraction < 0.5:
		k.Rec = 1
	default:
		k.Rec = 2
	}
	switch {
	case v.Density < 2:
	case v.Density < 6:
		k.Dens = 1
	default:
		k.Dens = 2
	}
	switch {
	case v.RecMII < v.ResMII:
	case v.RecMII == v.ResMII:
		k.Bound = 1
	default:
		k.Bound = 2
	}
	return k
}
