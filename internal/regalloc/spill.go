package regalloc

import (
	"fmt"

	"repro/internal/ir"
)

// This file completes the Chaitin/Briggs allocator for straight-line code:
// when coloring fails, spill code is inserted (a store to a spill slot
// after each definition of the spilled register, a reload into a fresh
// short-lived temporary before each use) and coloring reruns on the
// rewritten code. Reloaded temporaries have near-minimal live ranges, so
// the iteration converges in a couple of rounds. Software-pipelined
// kernels are deliberately excluded — spilling inside a kernel changes the
// schedule and the II, which is why the paper (and this reproduction)
// sizes banks so kernels do not spill, and merely reports pressure.

// SpillBase is the array-name prefix of compiler-generated spill slots.
const SpillBase = "spill."

// LinearRanges computes program-order live ranges for straight-line code:
// time is the operation index, a value lives from its (first) definition
// to its last use, and upward-exposed values live from entry.
func LinearRanges(b *ir.Block) []LiveRange {
	start := make(map[ir.Reg]int)
	end := make(map[ir.Reg]int)
	invariant := make(map[ir.Reg]bool)
	for i, op := range b.Ops {
		for _, u := range op.Uses {
			if _, ok := start[u]; !ok {
				start[u] = 0
				invariant[u] = true
			}
			end[u] = i + 1
		}
		for _, d := range op.Defs {
			if _, ok := start[d]; !ok || invariant[d] {
				if _, defined := start[d]; !defined {
					start[d] = i
				}
			}
			if end[d] < i+1 {
				end[d] = i + 1 // defined but unread values still occupy a slot
			}
		}
	}
	out := make([]LiveRange, 0, len(start))
	for r, s := range start {
		out = append(out, LiveRange{Reg: r, Start: s, End: end[r], Invariant: invariant[r]})
	}
	sortRanges(out)
	return out
}

// SpillRewrite inserts spill code for the given registers: defs are
// followed by a store to the register's spill slot, uses are preceded by a
// reload into a fresh temporary. newReg allocates the temporaries.
func SpillRewrite(b *ir.Block, spilled map[ir.Reg]bool, newReg func(ir.Class) ir.Reg) *ir.Block {
	out := &ir.Block{Depth: b.Depth}
	slot := func(r ir.Reg) *ir.MemRef {
		return &ir.MemRef{Base: fmt.Sprintf("%s%s", SpillBase, r)}
	}
	for _, op := range b.Ops {
		n := op.Clone()
		for ui, u := range n.Uses {
			if !spilled[u] {
				continue
			}
			tmp := newReg(u.Class)
			out.Append(&ir.Op{Code: ir.Load, Class: u.Class, Defs: []ir.Reg{tmp}, Mem: slot(u)})
			n.Uses[ui] = tmp
		}
		out.Append(n)
		for _, d := range n.Defs {
			if spilled[d] {
				out.Append(&ir.Op{Code: ir.Store, Class: d.Class, Uses: []ir.Reg{d}, Mem: slot(d)})
			}
		}
	}
	out.Renumber()
	return out
}

// BlockAlloc is the result of iterated allocation on straight-line code.
type BlockAlloc struct {
	// Body is the final code, including any inserted spill code.
	Body *ir.Block
	// Colors is the final register assignment (no spills remain).
	Colors map[ir.Reg]int
	// Rounds is how many color/spill/rewrite iterations ran.
	Rounds int
	// SpilledValues counts distinct registers sent to memory.
	SpilledValues int
	// SpillOps counts inserted loads and stores.
	SpillOps int
	// MaxLive is the final register pressure.
	MaxLive int
}

// AllocateBlock colors a straight-line block with k machine registers,
// inserting spill code and recoloring until everything fits. It gives up
// after maxRounds (default 10) — k below the widest single operation's
// needs can never converge.
func AllocateBlock(loop *ir.Loop, k int) (*BlockAlloc, error) {
	const maxRounds = 10
	body := loop.Body
	res := &BlockAlloc{}
	spilledEver := make(map[ir.Reg]bool)
	for round := 1; round <= maxRounds; round++ {
		res.Rounds = round
		ranges := LinearRanges(body)
		col := Color(ranges, len(body.Ops)+1, k)
		if len(col.Spilled) == 0 {
			res.Body = body
			res.Colors = col.Colors
			res.MaxLive = col.MaxLive
			return res, nil
		}
		spillSet := make(map[ir.Reg]bool, len(col.Spilled))
		for _, r := range col.Spilled {
			if spilledEver[r] {
				return nil, fmt.Errorf("regalloc: register %s spilled twice; k=%d cannot hold the code", r, k)
			}
			spilledEver[r] = true
			spillSet[r] = true
		}
		res.SpilledValues += len(spillSet)
		before := len(body.Ops)
		body = SpillRewrite(body, spillSet, loop.NewReg)
		res.SpillOps += len(body.Ops) - before
	}
	return nil, fmt.Errorf("regalloc: no fit within %d rounds at k=%d", maxRounds, k)
}
