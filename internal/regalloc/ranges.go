// Package regalloc implements step 5 of the paper's framework (Section 4):
// "with functional units specified and registers allocated to banks,
// perform standard Chaitin/Briggs graph coloring register assignment for
// each register bank".
//
// The allocator works on live ranges extracted from a schedule. For a
// modulo schedule the ranges are cyclic: a value defined at cycle t and
// last consumed at cycle t' (possibly in a later iteration) occupies its
// register for t'-t+1 cycles that repeat every II cycles, so a lifetime
// longer than the II needs ceil(len/II) simultaneous physical registers —
// the classic modulo-variable-expansion requirement, which the coloring
// models by giving such values multiple mutually interfering names.
package regalloc

import (
	"slices"
	"sync"

	"repro/internal/ddg"
	"repro/internal/ir"
	"repro/internal/modulo"
	"repro/internal/sched"
	"repro/internal/scratch"
)

// span is one register's lifetime accumulator during range extraction.
type span struct {
	start, end int
	hasDef     bool
}

// rangesScratch holds live-range extraction's per-call working set: a
// dense register index over the graph's operations and the span table it
// indexes. The returned []LiveRange is always freshly allocated.
type rangesScratch struct {
	ri    ir.RegIndex
	spans []span
}

var rangesPool = sync.Pool{New: func() any { return new(rangesScratch) }}

// LiveRange is the half-open lifetime [Start, End) of a register in
// schedule time. In a modulo schedule the range repeats every II cycles.
type LiveRange struct {
	Reg ir.Reg
	// Start is the issue cycle of the defining operation (0 for loop
	// invariants, which are defined in the preheader).
	Start int
	// End is one past the last cycle at which the value is read; for
	// loop-carried consumers this includes the iteration distance
	// (End = useTime + distance*II + 1).
	End int
	// Invariant marks loop live-ins with no definition in the body: they
	// occupy a register for the whole loop.
	Invariant bool
}

// Len returns the lifetime length in cycles.
func (lr LiveRange) Len() int { return lr.End - lr.Start }

// KernelRanges extracts the cyclic live ranges of every register in a
// modulo-scheduled loop body. The dependence graph supplies the def-use
// pairs (true edges carry the register and the iteration distance).
func KernelRanges(g *ddg.Graph, s *modulo.Schedule) []LiveRange {
	return KernelRangesScratch(g, s, nil)
}

// KernelRangesScratch is KernelRanges drawing its span table from the
// compile's scratch arena (slot scratch.Ranges); nil falls back to a
// shared pool. The returned ranges never alias scratch memory.
func KernelRangesScratch(g *ddg.Graph, s *modulo.Schedule, a *scratch.Arena) []LiveRange {
	sc, arenaOwned := scratch.For(a, scratch.Ranges, func() *rangesScratch { return new(rangesScratch) })
	if !arenaOwned {
		sc = rangesPool.Get().(*rangesScratch)
		defer rangesPool.Put(sc)
	}
	sc.ri.ResetOps(g.Ops)
	nr := sc.ri.Len()
	if cap(sc.spans) < nr {
		sc.spans = make([]span, nr, nr*2)
	}
	sc.spans = sc.spans[:nr]
	spans := sc.spans
	for i := range spans {
		spans[i] = span{start: -1, end: -1}
	}
	for i, op := range g.Ops {
		for _, d := range op.Defs {
			sp := &spans[sc.ri.Of(d)]
			if !sp.hasDef || s.Time[i] < sp.start {
				sp.start = s.Time[i]
				sp.hasDef = true
			}
		}
		// Uses are present in the index by construction, so pure live-ins
		// get a span even if never extended by an edge.
	}
	for from := range g.Ops {
		for _, e := range g.Out[from] {
			if e.Kind != ddg.True {
				continue
			}
			sp := &spans[sc.ri.Of(e.Reg)]
			if end := s.Time[e.To] + e.Distance*s.II + 1; end > sp.end {
				sp.end = end
			}
		}
	}
	// Uses with no recorded true edge (pure live-in invariants) and defs
	// never read (dead stores into registers) still need ranges.
	out := make([]LiveRange, 0, nr)
	for i := range spans {
		sp := &spans[i]
		lr := LiveRange{Reg: sc.ri.Reg(i)}
		switch {
		case !sp.hasDef:
			// Loop invariant: live across the entire kernel, every
			// iteration.
			lr.Start, lr.End, lr.Invariant = 0, s.II, true
		case sp.end < 0:
			// Defined but never read inside the loop (the value escapes
			// via the final iteration); hold it for its def latency.
			lr.Start, lr.End = sp.start, sp.start+1
		default:
			lr.Start, lr.End = sp.start, sp.end
		}
		out = append(out, lr)
	}
	sortRanges(out)
	return out
}

// BlockRanges extracts live ranges from a list-scheduled acyclic block.
func BlockRanges(g *ddg.Graph, s *sched.Schedule) []LiveRange {
	kernelLike := &modulo.Schedule{II: s.Length + 1, Time: s.Time, Cluster: s.Cluster, Length: s.Length}
	ranges := KernelRanges(g, kernelLike)
	// Invariants in straight-line code are just live-in parameters; keep
	// them spanning the block.
	return ranges
}

func sortRanges(rs []LiveRange) {
	slices.SortFunc(rs, func(x, y LiveRange) int {
		if x.Reg.Class != y.Reg.Class {
			return int(x.Reg.Class) - int(y.Reg.Class)
		}
		return x.Reg.ID - y.Reg.ID
	})
}

// MaxLive returns the maximum number of simultaneously live register
// copies across the II kernel rows — the register pressure the bank must
// sustain. Lifetimes longer than the II count multiple times on the rows
// they overlap themselves.
func MaxLive(ranges []LiveRange, ii int) int {
	if ii <= 0 {
		return 0
	}
	return maxLiveRows(ranges, ii, make([]int, ii))
}

// maxLiveScratch is MaxLive with the row accumulator drawn from coloring
// scratch.
func maxLiveScratch(ranges []LiveRange, ii int, sc *colorScratch) int {
	if ii <= 0 {
		return 0
	}
	sc.rows = scratch.Ints(sc.rows, ii)
	scratch.FillInts(sc.rows, 0)
	return maxLiveRows(ranges, ii, sc.rows)
}

func maxLiveRows(ranges []LiveRange, ii int, rows []int) int {
	for _, lr := range ranges {
		length := lr.Len()
		if length <= 0 {
			continue
		}
		full := length / ii // complete wraps cover every row once each
		rem := length % ii
		for r := 0; r < ii; r++ {
			rows[r] += full
		}
		for k := 0; k < rem; k++ {
			rows[(lr.Start+k)%ii]++
		}
	}
	max := 0
	for _, v := range rows {
		if v > max {
			max = v
		}
	}
	return max
}
