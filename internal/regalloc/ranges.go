// Package regalloc implements step 5 of the paper's framework (Section 4):
// "with functional units specified and registers allocated to banks,
// perform standard Chaitin/Briggs graph coloring register assignment for
// each register bank".
//
// The allocator works on live ranges extracted from a schedule. For a
// modulo schedule the ranges are cyclic: a value defined at cycle t and
// last consumed at cycle t' (possibly in a later iteration) occupies its
// register for t'-t+1 cycles that repeat every II cycles, so a lifetime
// longer than the II needs ceil(len/II) simultaneous physical registers —
// the classic modulo-variable-expansion requirement, which the coloring
// models by giving such values multiple mutually interfering names.
package regalloc

import (
	"sort"

	"repro/internal/ddg"
	"repro/internal/ir"
	"repro/internal/modulo"
	"repro/internal/sched"
)

// LiveRange is the half-open lifetime [Start, End) of a register in
// schedule time. In a modulo schedule the range repeats every II cycles.
type LiveRange struct {
	Reg ir.Reg
	// Start is the issue cycle of the defining operation (0 for loop
	// invariants, which are defined in the preheader).
	Start int
	// End is one past the last cycle at which the value is read; for
	// loop-carried consumers this includes the iteration distance
	// (End = useTime + distance*II + 1).
	End int
	// Invariant marks loop live-ins with no definition in the body: they
	// occupy a register for the whole loop.
	Invariant bool
}

// Len returns the lifetime length in cycles.
func (lr LiveRange) Len() int { return lr.End - lr.Start }

// KernelRanges extracts the cyclic live ranges of every register in a
// modulo-scheduled loop body. The dependence graph supplies the def-use
// pairs (true edges carry the register and the iteration distance).
func KernelRanges(g *ddg.Graph, s *modulo.Schedule) []LiveRange {
	type span struct {
		start, end int
		hasDef     bool
	}
	spans := make(map[ir.Reg]*span)
	get := func(r ir.Reg) *span {
		sp := spans[r]
		if sp == nil {
			sp = &span{start: -1, end: -1}
			spans[r] = sp
		}
		return sp
	}
	for i, op := range g.Ops {
		for _, d := range op.Defs {
			sp := get(d)
			if !sp.hasDef || s.Time[i] < sp.start {
				sp.start = s.Time[i]
				sp.hasDef = true
			}
		}
		for _, u := range op.Uses {
			get(u) // ensure presence even if never extended by an edge
		}
	}
	for from := range g.Ops {
		for _, e := range g.Out[from] {
			if e.Kind != ddg.True {
				continue
			}
			sp := get(e.Reg)
			if end := s.Time[e.To] + e.Distance*s.II + 1; end > sp.end {
				sp.end = end
			}
		}
	}
	// Uses with no recorded true edge (pure live-in invariants) and defs
	// never read (dead stores into registers) still need ranges.
	var out []LiveRange
	for r, sp := range spans {
		lr := LiveRange{Reg: r}
		switch {
		case !sp.hasDef:
			// Loop invariant: live across the entire kernel, every
			// iteration.
			lr.Start, lr.End, lr.Invariant = 0, s.II, true
		case sp.end < 0:
			// Defined but never read inside the loop (the value escapes
			// via the final iteration); hold it for its def latency.
			lr.Start, lr.End = sp.start, sp.start+1
		default:
			lr.Start, lr.End = sp.start, sp.end
		}
		out = append(out, lr)
	}
	sortRanges(out)
	return out
}

// BlockRanges extracts live ranges from a list-scheduled acyclic block.
func BlockRanges(g *ddg.Graph, s *sched.Schedule) []LiveRange {
	kernelLike := &modulo.Schedule{II: s.Length + 1, Time: s.Time, Cluster: s.Cluster, Length: s.Length}
	ranges := KernelRanges(g, kernelLike)
	// Invariants in straight-line code are just live-in parameters; keep
	// them spanning the block.
	return ranges
}

func sortRanges(rs []LiveRange) {
	sort.Slice(rs, func(i, j int) bool {
		a, b := rs[i].Reg, rs[j].Reg
		if a.Class != b.Class {
			return a.Class < b.Class
		}
		return a.ID < b.ID
	})
}

// MaxLive returns the maximum number of simultaneously live register
// copies across the II kernel rows — the register pressure the bank must
// sustain. Lifetimes longer than the II count multiple times on the rows
// they overlap themselves.
func MaxLive(ranges []LiveRange, ii int) int {
	if ii <= 0 {
		return 0
	}
	rows := make([]int, ii)
	for _, lr := range ranges {
		length := lr.Len()
		if length <= 0 {
			continue
		}
		full := length / ii // complete wraps cover every row once each
		rem := length % ii
		for r := 0; r < ii; r++ {
			rows[r] += full
		}
		for k := 0; k < rem; k++ {
			rows[(lr.Start+k)%ii]++
		}
	}
	max := 0
	for _, v := range rows {
		if v > max {
			max = v
		}
	}
	return max
}
