package regalloc

import (
	"slices"
	"sync"

	"repro/internal/ir"
	"repro/internal/scratch"
	"repro/internal/trace"
)

// Result reports one bank's register assignment.
type Result struct {
	// Colors maps each allocated register to its machine register number
	// within the bank. Values needing modulo variable expansion get the
	// lowest of their assigned contiguous block (see Needs).
	Colors map[ir.Reg]int
	// Needs maps each register to how many physical registers it consumes
	// (ceil(lifetime/II), at least 1).
	Needs map[ir.Reg]int
	// Spilled lists registers that could not be colored within K.
	Spilled []ir.Reg
	// Conflicts lists pairs of pre-colored registers whose pinned color
	// blocks overlap while their lifetimes interfere — an infeasible
	// pre-coloring the caller asked for.
	Conflicts [][2]ir.Reg
	// MaxLive is the bank's register pressure.
	MaxLive int
	// UsedColors is the number of distinct machine registers consumed.
	UsedColors int
}

// colorScratch is one coloring call's reusable working set: the dense
// per-node arrays, the CSR interference adjacency, and the free-color
// bitset shared across select-phase nodes. Results (the maps and slices
// in Result) are always freshly allocated.
type colorScratch struct {
	need, color, wdeg, stack            []int
	fixed, removed, optimistic, spilled []bool
	deg, adjStart, adjList, pairs       []int32
	taken                               []uint64
	rows                                []int
}

var colorPool = sync.Pool{New: func() any { return new(colorScratch) }}

// Color performs Chaitin/Briggs graph-coloring register assignment on one
// bank's cyclic live ranges with K machine registers available:
//
//  1. build the interference graph — two ranges interfere when their
//     lifetimes overlap at some cycle modulo the II;
//  2. simplify — repeatedly remove nodes whose weighted degree is
//     guaranteed colorable, pushing them on a stack; when none qualifies,
//     optimistically push the node with the lowest spill priority
//     (Briggs's optimistic coloring, which beats Chaitin's pessimistic
//     spill decision);
//  3. select — pop and assign colors; an optimistic node with no free
//     color is spilled.
//
// Each range is weighted by the number of simultaneous copies modulo
// variable expansion requires (ceil(len/II)); a node consumes that many
// colors and the Briggs test accounts for neighbor weights. Spilled
// registers are reported, not rewritten: the paper's experiments measure
// schedule degradation, and with the paper's 32-register banks spills are
// rare; the Spilled list lets the harness report them.
func Color(ranges []LiveRange, ii, k int) *Result {
	return ColorTraced(ranges, ii, k, nil, nil)
}

// ColorTraced is ColorPre with instrumentation: it records a
// "regalloc.color" span on tr (range count, K, resulting spills, pressure
// and colors used) and accumulates the "regalloc.spills" counter. A nil
// tr is free.
func ColorTraced(ranges []LiveRange, ii, k int, pre map[ir.Reg]int, tr *trace.Tracer) *Result {
	return ColorScratch(ranges, ii, k, pre, tr, nil)
}

// ColorScratch is ColorTraced drawing working buffers from the compile's
// scratch arena (slot scratch.Color); nil falls back to a shared pool.
func ColorScratch(ranges []LiveRange, ii, k int, pre map[ir.Reg]int, tr *trace.Tracer, a *scratch.Arena) *Result {
	sp := tr.StartSpan("regalloc.color")
	sc, arenaOwned := scratch.For(a, scratch.Color, func() *colorScratch { return new(colorScratch) })
	if !arenaOwned {
		sc = colorPool.Get().(*colorScratch)
		defer colorPool.Put(sc)
	}
	res := colorPre(ranges, ii, k, pre, sc)
	if sp != nil {
		sp.Int("ranges", int64(len(ranges))).Int("k", int64(k)).
			Int("spills", int64(len(res.Spilled))).Int("maxLive", int64(res.MaxLive)).
			Int("usedColors", int64(res.UsedColors)).End()
		tr.Add("regalloc.spills", int64(len(res.Spilled)))
	}
	return res
}

// ColorPre is Color with pre-colored registers: pre maps a register to the
// exact machine register number it must occupy within the bank. This is
// the assignment-level half of the paper's pre-coloring hook (Section
// 4.1): some machine idiosyncrasies require a value not only to live in a
// specific bank but to "use the same register number" as a partner value
// in another bank. Pre-colored nodes are fixed before simplification and
// never spilled; an infeasible pre-coloring (two interfering registers
// pinned to overlapping numbers) surfaces as spills of the conflicting
// un-pinned neighbors and is reported via Conflicts.
func ColorPre(ranges []LiveRange, ii, k int, pre map[ir.Reg]int) *Result {
	sc := colorPool.Get().(*colorScratch)
	defer colorPool.Put(sc)
	return colorPre(ranges, ii, k, pre, sc)
}

func colorPre(ranges []LiveRange, ii, k int, pre map[ir.Reg]int, sc *colorScratch) *Result {
	n := len(ranges)
	res := &Result{
		Colors:  make(map[ir.Reg]int, n),
		Needs:   make(map[ir.Reg]int, n),
		MaxLive: maxLiveScratch(ranges, ii, sc),
	}
	sc.need = scratch.Ints(sc.need, n)
	need := sc.need
	for i, lr := range ranges {
		need[i] = (lr.Len() + ii - 1) / ii
		if need[i] < 1 {
			need[i] = 1
		}
		res.Needs[lr.Reg] = need[i]
	}

	// Interference graph, CSR form: record interfering pairs once, count
	// degrees, then carve each node's neighbor list out of one flat array.
	// Neighbor lists come out sorted ascending, matching the append order
	// of the old per-node slice build.
	sc.deg = scratch.Int32s(sc.deg, n)
	deg := sc.deg
	for i := range deg {
		deg[i] = 0
	}
	pairs := sc.pairs[:0]
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if interfere(ranges[i], ranges[j], ii) {
				pairs = append(pairs, int32(i), int32(j))
				deg[i]++
				deg[j]++
			}
		}
	}
	sc.pairs = pairs
	sc.adjStart = scratch.Int32s(sc.adjStart, n+1)
	starts := sc.adjStart
	starts[0] = 0
	for i := 0; i < n; i++ {
		starts[i+1] = starts[i] + deg[i]
	}
	sc.adjList = scratch.Int32s(sc.adjList, len(pairs))
	adjList := sc.adjList
	fill := deg // reuse as per-node fill cursor
	for i := range fill {
		fill[i] = 0
	}
	for p := 0; p < len(pairs); p += 2 {
		i, j := pairs[p], pairs[p+1]
		adjList[starts[i]+fill[i]] = j
		adjList[starts[j]+fill[j]] = i
		fill[i]++
		fill[j]++
	}
	adj := func(v int) []int32 { return adjList[starts[v]:starts[v+1]] }

	// Pre-colored nodes are fixed before simplification: they never enter
	// the stack, never spill, and permanently block their color block for
	// every neighbor.
	sc.color = scratch.Ints(sc.color, n)
	sc.fixed = scratch.Bools(sc.fixed, n)
	color, fixed := sc.color, sc.fixed
	nFree := n
	for i := range color {
		color[i] = -1
		fixed[i] = false
	}
	for i, lr := range ranges {
		if c, ok := pre[lr.Reg]; ok {
			color[i] = c
			fixed[i] = true
			res.Colors[lr.Reg] = c
			if top := c + need[i]; top > res.UsedColors {
				res.UsedColors = top
			}
			nFree--
		}
	}
	for i := 0; i < n; i++ {
		if !fixed[i] {
			continue
		}
		for _, u := range adj(i) {
			if fixed[u] && int(u) > i && blocksOverlap(color[i], need[i], color[u], need[u]) {
				res.Conflicts = append(res.Conflicts, [2]ir.Reg{ranges[i].Reg, ranges[u].Reg})
			}
		}
	}

	// Simplify with Briggs's optimistic push. Weighted degree of node v is
	// sum of need(u) over live neighbors; v is trivially colorable when
	// weightedDegree(v) + need(v) <= k. Fixed nodes count as permanent
	// neighbors: their weight is never subtracted.
	sc.removed = scratch.Bools(sc.removed, n)
	sc.optimistic = scratch.Bools(sc.optimistic, n)
	removed, optimistic := sc.removed, sc.optimistic
	scratch.ZeroBools(removed)
	scratch.ZeroBools(optimistic)
	sc.wdeg = scratch.Ints(sc.wdeg, n)
	wdeg := sc.wdeg
	for v := 0; v < n; v++ {
		wdeg[v] = 0
		for _, u := range adj(v) {
			wdeg[v] += need[u]
		}
	}
	stack := sc.stack[:0]
	for len(stack) < nFree {
		pick := -1
		for v := 0; v < n; v++ {
			if removed[v] || fixed[v] {
				continue
			}
			if wdeg[v]+need[v] <= k {
				pick = v
				break
			}
		}
		opt := false
		if pick < 0 {
			// No trivially colorable node: optimistically push the best
			// spill candidate — the range whose removal relieves the most
			// pressure for the least reload cost. Lifetime length times
			// name count measures relief; long-lived, multi-name values
			// spill first, and the short reload temporaries created by
			// SpillRewrite are never re-picked, which is what makes the
			// spill iteration converge.
			best := -1.0
			for v := 0; v < n; v++ {
				if removed[v] || fixed[v] {
					continue
				}
				pr := float64(ranges[v].Len()) * float64(need[v])
				if pick < 0 || pr > best {
					pick, best = v, pr
				}
			}
			opt = true
		}
		removed[pick] = true
		optimistic[pick] = opt
		stack = append(stack, pick)
		for _, u := range adj(pick) {
			if !removed[u] {
				wdeg[u] -= need[pick]
			}
		}
	}
	sc.stack = stack

	// Select. One free-color bitset (k bits) is cleared and re-marked per
	// node instead of allocating a taken-set for each — colors at or above
	// k can never be granted, so marks beyond k-1 are simply dropped.
	sc.spilled = scratch.Bools(sc.spilled, n)
	spilled := sc.spilled
	scratch.ZeroBools(spilled)
	kw := (k + 63) / 64
	sc.taken = scratch.Words(sc.taken, kw)
	taken := sc.taken
	for i := len(stack) - 1; i >= 0; i-- {
		v := stack[i]
		scratch.ZeroWords(taken)
		for _, u := range adj(v) {
			if color[u] >= 0 && !spilled[u] {
				for c := color[u]; c < color[u]+need[u] && c < k; c++ {
					if c >= 0 {
						taken[c>>6] |= 1 << (c & 63)
					}
				}
			}
		}
		base := firstFreeBlock(taken, need[v], k)
		if base < 0 {
			spilled[v] = true
			res.Spilled = append(res.Spilled, ranges[v].Reg)
			continue
		}
		color[v] = base
		res.Colors[ranges[v].Reg] = base
		if top := base + need[v]; top > res.UsedColors {
			res.UsedColors = top
		}
	}
	slices.SortFunc(res.Spilled, func(x, y ir.Reg) int {
		if x.Class != y.Class {
			return int(x.Class) - int(y.Class)
		}
		return x.ID - y.ID
	})
	return res
}

// blocksOverlap reports whether color blocks [a, a+na) and [b, b+nb)
// intersect.
func blocksOverlap(a, na, b, nb int) bool {
	return a < b+nb && b < a+na
}

// firstFreeBlock finds the lowest base color such that the block
// [base, base+need) fits under k and avoids taken colors; -1 if none.
func firstFreeBlock(taken []uint64, need, k int) int {
	for base := 0; base+need <= k; base++ {
		ok := true
		for c := base; c < base+need; c++ {
			if taken[c>>6]&(1<<(c&63)) != 0 {
				ok = false
				break
			}
		}
		if ok {
			return base
		}
	}
	return -1
}

// interfere reports whether two cyclic live ranges overlap at some cycle
// modulo ii. Range a occupies [a.Start, a.End); shifting b by every
// feasible multiple of ii detects wrapped overlap.
func interfere(a, b LiveRange, ii int) bool {
	if a.Len() <= 0 || b.Len() <= 0 {
		return false
	}
	if a.Len() >= ii || b.Len() >= ii {
		return true // covers every row at least once
	}
	// k ranges so that b+k*ii can overlap a.
	lo := floorDiv(a.Start-b.End+1, ii)
	hi := floorDiv(a.End-1-b.Start, ii)
	for k := lo; k <= hi; k++ {
		bs, be := b.Start+k*ii, b.End+k*ii
		if bs < a.End && a.Start < be {
			return true
		}
	}
	return false
}

func floorDiv(a, b int) int {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}
