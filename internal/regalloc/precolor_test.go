package regalloc

import (
	"testing"

	"repro/internal/ir"
)

func TestColorPreFixesNumbers(t *testing.T) {
	ranges := []LiveRange{
		{Reg: reg(1), Start: 0, End: 3},
		{Reg: reg(2), Start: 1, End: 4},
		{Reg: reg(3), Start: 2, End: 5},
	}
	pre := map[ir.Reg]int{reg(2): 5}
	res := ColorPre(ranges, 10, 8, pre)
	if res.Colors[reg(2)] != 5 {
		t.Fatalf("pre-colored register got %d, want 5", res.Colors[reg(2)])
	}
	if len(res.Spilled) != 0 {
		t.Fatalf("spills with plentiful registers: %v", res.Spilled)
	}
	checkColoring(t, ranges, res, 10)
	if len(res.Conflicts) != 0 {
		t.Errorf("unexpected conflicts: %v", res.Conflicts)
	}
}

func TestColorPreNeverSpillsFixed(t *testing.T) {
	// Six mutually interfering ranges, K=4, two of them pinned: the
	// pinned ones must survive and the spills fall on unpinned neighbors.
	var ranges []LiveRange
	for i := 1; i <= 6; i++ {
		ranges = append(ranges, LiveRange{Reg: reg(i), Start: 0, End: 5})
	}
	pre := map[ir.Reg]int{reg(5): 0, reg(6): 1}
	res := ColorPre(ranges, 10, 4, pre)
	for _, s := range res.Spilled {
		if s == reg(5) || s == reg(6) {
			t.Errorf("pre-colored register %s spilled", s)
		}
	}
	if res.Colors[reg(5)] != 0 || res.Colors[reg(6)] != 1 {
		t.Error("pre-colored numbers not honored")
	}
	checkColoring(t, ranges, res, 10)
}

func TestColorPreDetectsInfeasiblePinning(t *testing.T) {
	ranges := []LiveRange{
		{Reg: reg(1), Start: 0, End: 5},
		{Reg: reg(2), Start: 2, End: 6},
	}
	pre := map[ir.Reg]int{reg(1): 3, reg(2): 3}
	res := ColorPre(ranges, 10, 8, pre)
	if len(res.Conflicts) != 1 {
		t.Fatalf("conflicts = %v, want the interfering pinned pair", res.Conflicts)
	}
}

func TestColorPreSameNumberDisjointLifetimes(t *testing.T) {
	// The paper's idiosyncratic case: two values pinned to the same
	// register number is fine when their lifetimes never overlap.
	ranges := []LiveRange{
		{Reg: reg(1), Start: 0, End: 2},
		{Reg: reg(2), Start: 3, End: 5},
	}
	pre := map[ir.Reg]int{reg(1): 7, reg(2): 7}
	res := ColorPre(ranges, 100, 8, pre)
	if len(res.Conflicts) != 0 {
		t.Errorf("disjoint same-number pinning flagged: %v", res.Conflicts)
	}
	if res.Colors[reg(1)] != 7 || res.Colors[reg(2)] != 7 {
		t.Error("numbers not honored")
	}
}
