package regalloc

import (
	"strings"
	"testing"

	"repro/internal/interp"
	"repro/internal/ir"
)

// pressureBlock builds straight-line code holding `width` values live at
// once: width loads, then width stores in the same order.
func pressureBlock(width int) *ir.Loop {
	l := ir.NewLoop("pressure")
	l.Body.Depth = 0
	b := ir.NewLoopBuilder(l)
	regs := make([]ir.Reg, width)
	for i := range regs {
		regs[i] = b.Load(ir.Float, ir.MemRef{Base: "a", Offset: i})
	}
	for i, r := range regs {
		b.Store(r, ir.MemRef{Base: "b", Offset: i})
	}
	return l
}

func TestLinearRanges(t *testing.T) {
	l := pressureBlock(3)
	ranges := LinearRanges(l.Body)
	if len(ranges) != 3 {
		t.Fatalf("%d ranges", len(ranges))
	}
	// First value: defined at op 0, last used at op 3 (its store).
	for _, lr := range ranges {
		if lr.Invariant {
			t.Errorf("%s marked invariant; everything is defined here", lr.Reg)
		}
		if lr.Len() <= 0 {
			t.Errorf("%s has empty range", lr.Reg)
		}
	}
	if got := MaxLive(ranges, len(l.Body.Ops)+1); got != 3 {
		t.Errorf("pressure = %d, want 3", got)
	}
}

func TestAllocateBlockNoSpillWhenFits(t *testing.T) {
	l := pressureBlock(4)
	res, err := AllocateBlock(l, 8)
	if err != nil {
		t.Fatal(err)
	}
	if res.SpilledValues != 0 || res.Rounds != 1 {
		t.Errorf("unexpected spilling: %+v", res)
	}
	if len(res.Colors) != 4 {
		t.Errorf("colored %d registers", len(res.Colors))
	}
}

func TestAllocateBlockSpillsAndConverges(t *testing.T) {
	l := pressureBlock(8) // 8 simultaneous values
	res, err := AllocateBlock(l, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.SpilledValues == 0 {
		t.Fatal("8 values in 4 registers requires spilling")
	}
	if res.SpillOps == 0 {
		t.Fatal("no spill code inserted")
	}
	if res.MaxLive > 4 {
		t.Errorf("final pressure %d exceeds k=4", res.MaxLive)
	}
	// The final code must verify and color cleanly.
	if err := ir.VerifyBlock(res.Body); err != nil {
		t.Fatal(err)
	}
	final := Color(LinearRanges(res.Body), len(res.Body.Ops)+1, 4)
	if len(final.Spilled) != 0 {
		t.Errorf("final code still spills: %v", final.Spilled)
	}
}

func TestAllocateBlockImpossibleK(t *testing.T) {
	// An add needs both operands and its result simultaneously live
	// (the result's range opens while the operands' are still open), so
	// k=2 can never converge no matter how much is spilled.
	l := ir.NewLoop("add")
	l.Body.Depth = 0
	b := ir.NewLoopBuilder(l)
	x := b.Load(ir.Float, ir.MemRef{Base: "a", Offset: 0})
	y := b.Load(ir.Float, ir.MemRef{Base: "a", Offset: 1})
	b.Store(b.Add(x, y), ir.MemRef{Base: "b"})
	if _, err := AllocateBlock(l, 2); err == nil {
		t.Error("k=2 cannot hold a binary operation; expected an error")
	}
	if res, err := AllocateBlock(l, 3); err != nil || res.SpilledValues != 0 {
		t.Errorf("k=3 should fit without spills: %v %+v", err, res)
	}
}

func TestAllocateBlockFullSpillTinyK(t *testing.T) {
	// Loads and stores touch one register at a time, so even k=1
	// converges by spilling everything.
	l := pressureBlock(6)
	res, err := AllocateBlock(l, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxLive > 1 {
		t.Errorf("final pressure %d with k=1", res.MaxLive)
	}
}

func TestSpillRewritePreservesSemantics(t *testing.T) {
	l := pressureBlock(8)
	const seed = 5150
	want := interp.New(seed)
	want.SeedLiveIns(l.Body)
	if err := want.RunLoop(l.Body, 1); err != nil {
		t.Fatal(err)
	}
	res, err := AllocateBlock(l, 4)
	if err != nil {
		t.Fatal(err)
	}
	got := interp.New(seed)
	got.SeedLiveIns(l.Body)
	if err := got.RunLoop(res.Body, 1); err != nil {
		t.Fatal(err)
	}
	// Ignore the stores into compiler spill slots; the program's own
	// store stream must be identical.
	filter := func(evs []interp.StoreEvent) []interp.StoreEvent {
		var out []interp.StoreEvent
		for _, e := range evs {
			if !strings.HasPrefix(e.Base, SpillBase) {
				out = append(out, e)
			}
		}
		return out
	}
	if err := interp.SameStores(filter(want.Stores), filter(got.Stores)); err != nil {
		t.Fatal(err)
	}
}

func TestSpillRewriteShape(t *testing.T) {
	l := pressureBlock(2)
	r := l.Body.Ops[0].Def()
	nb := SpillRewrite(l.Body, map[ir.Reg]bool{r: true}, l.NewReg)
	// Expect: load r, store r->slot, load a[1], reload tmp, store b[0](tmp), store b[1].
	stores, loads := 0, 0
	for _, op := range nb.Ops {
		if op.Mem != nil && strings.HasPrefix(op.Mem.Base, SpillBase) {
			if op.Code == ir.Store {
				stores++
			} else {
				loads++
			}
		}
	}
	if stores != 1 || loads != 1 {
		t.Errorf("spill code: %d stores, %d reloads, want 1 each\n%s", stores, loads, nb)
	}
	if err := ir.VerifyBlock(nb); err != nil {
		t.Fatal(err)
	}
}
