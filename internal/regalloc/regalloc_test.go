package regalloc

import (
	"context"
	"testing"
	"testing/quick"

	"repro/internal/ddg"
	"repro/internal/fixtures"
	"repro/internal/ir"
	"repro/internal/machine"
	"repro/internal/modulo"
)

func reg(id int) ir.Reg { return ir.Reg{ID: id, Class: ir.Float} }

func TestInterfere(t *testing.T) {
	tests := []struct {
		name string
		a, b LiveRange
		ii   int
		want bool
	}{
		{"disjoint same iteration", LiveRange{Start: 0, End: 2}, LiveRange{Start: 2, End: 4}, 10, false},
		{"overlap same iteration", LiveRange{Start: 0, End: 3}, LiveRange{Start: 2, End: 4}, 10, true},
		{"wrap collision", LiveRange{Start: 8, End: 12}, LiveRange{Start: 0, End: 3}, 10, true}, // 8..12 wraps onto 0..2
		{"wrap miss", LiveRange{Start: 8, End: 10}, LiveRange{Start: 0, End: 3}, 10, false},
		{"full-period range hits everything", LiveRange{Start: 0, End: 10}, LiveRange{Start: 5, End: 6}, 10, true},
		{"empty range never interferes", LiveRange{Start: 3, End: 3}, LiveRange{Start: 0, End: 10}, 10, false},
	}
	for _, tt := range tests {
		if got := interfere(tt.a, tt.b, tt.ii); got != tt.want {
			t.Errorf("%s: interfere = %v, want %v", tt.name, got, tt.want)
		}
		if got := interfere(tt.b, tt.a, tt.ii); got != tt.want {
			t.Errorf("%s (swapped): interfere = %v, want %v", tt.name, got, tt.want)
		}
	}
}

// TestInterfereAgainstBruteForce checks the wrapped-overlap algebra
// against direct enumeration: two cyclic ranges interfere exactly when
// some pair of occupied cycles is congruent modulo the II.
func TestInterfereAgainstBruteForce(t *testing.T) {
	brute := func(a, b LiveRange, ii int) bool {
		for x := a.Start; x < a.End; x++ {
			for y := b.Start; y < b.End; y++ {
				if ((x-y)%ii+ii)%ii == 0 {
					return true
				}
			}
		}
		return false
	}
	for ii := 1; ii <= 7; ii++ {
		for s1 := 0; s1 < 10; s1++ {
			for l1 := 0; l1 <= 9; l1++ {
				for s2 := 0; s2 < 10; s2++ {
					for l2 := 0; l2 <= 9; l2++ {
						a := LiveRange{Start: s1, End: s1 + l1}
						b := LiveRange{Start: s2, End: s2 + l2}
						want := brute(a, b, ii)
						if got := interfere(a, b, ii); got != want {
							t.Fatalf("interfere([%d,%d),[%d,%d), ii=%d) = %v, brute force says %v",
								a.Start, a.End, b.Start, b.End, ii, got, want)
						}
					}
				}
			}
		}
	}
}

func TestInterfereSymmetricProperty(t *testing.T) {
	f := func(s1, l1, s2, l2 uint8, iiRaw uint8) bool {
		ii := int(iiRaw%20) + 1
		a := LiveRange{Start: int(s1 % 40), End: int(s1%40) + int(l1%15)}
		b := LiveRange{Start: int(s2 % 40), End: int(s2%40) + int(l2%15)}
		return interfere(a, b, ii) == interfere(b, a, ii)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMaxLive(t *testing.T) {
	ranges := []LiveRange{
		{Reg: reg(1), Start: 0, End: 2},
		{Reg: reg(2), Start: 1, End: 3},
		{Reg: reg(3), Start: 2, End: 4},
	}
	if got := MaxLive(ranges, 4); got != 2 {
		t.Errorf("MaxLive = %d, want 2", got)
	}
	// A lifetime of 2 full periods contributes 2 everywhere.
	long := []LiveRange{{Reg: reg(1), Start: 0, End: 8}}
	if got := MaxLive(long, 4); got != 2 {
		t.Errorf("MaxLive(long) = %d, want 2", got)
	}
	if MaxLive(nil, 4) != 0 || MaxLive(ranges, 0) != 0 {
		t.Error("degenerate MaxLive inputs must be 0")
	}
}

func TestColorValidAssignment(t *testing.T) {
	ranges := []LiveRange{
		{Reg: reg(1), Start: 0, End: 3},
		{Reg: reg(2), Start: 1, End: 4},
		{Reg: reg(3), Start: 2, End: 5},
		{Reg: reg(4), Start: 6, End: 8},
	}
	res := Color(ranges, 10, 4)
	if len(res.Spilled) != 0 {
		t.Fatalf("unexpected spills: %v", res.Spilled)
	}
	checkColoring(t, ranges, res, 10)
}

func checkColoring(t *testing.T, ranges []LiveRange, res *Result, ii int) {
	t.Helper()
	spilled := make(map[ir.Reg]bool)
	for _, r := range res.Spilled {
		spilled[r] = true
	}
	for i := 0; i < len(ranges); i++ {
		for j := i + 1; j < len(ranges); j++ {
			a, b := ranges[i], ranges[j]
			if spilled[a.Reg] || spilled[b.Reg] {
				continue
			}
			if !interfere(a, b, ii) {
				continue
			}
			ca, cb := res.Colors[a.Reg], res.Colors[b.Reg]
			na, nb := res.Needs[a.Reg], res.Needs[b.Reg]
			if ca < cb+nb && cb < ca+na {
				t.Errorf("interfering %s and %s share colors [%d,%d) and [%d,%d)",
					a.Reg, b.Reg, ca, ca+na, cb, cb+nb)
			}
		}
	}
}

func TestColorSpillsWhenTooFewRegisters(t *testing.T) {
	var ranges []LiveRange
	for i := 1; i <= 6; i++ {
		ranges = append(ranges, LiveRange{Reg: reg(i), Start: 0, End: 5})
	}
	res := Color(ranges, 10, 4)
	if len(res.Spilled) != 2 {
		t.Errorf("spilled %d of 6 ranges with 4 registers, want 2", len(res.Spilled))
	}
	checkColoring(t, ranges, res, 10)
}

func TestColorModuloExpansionNeeds(t *testing.T) {
	// Lifetime 7 at II 3 needs ceil(7/3) = 3 physical registers.
	ranges := []LiveRange{{Reg: reg(1), Start: 0, End: 7}}
	res := Color(ranges, 3, 8)
	if res.Needs[reg(1)] != 3 {
		t.Errorf("needs = %d, want 3", res.Needs[reg(1)])
	}
	if res.UsedColors != 3 {
		t.Errorf("used colors = %d, want 3", res.UsedColors)
	}
}

func TestColorOptimisticBeatsPessimism(t *testing.T) {
	// A 5-cycle of unit ranges is 2-colorable pairwise... actually an odd
	// cycle needs 3; with K=3 Briggs must color it without spilling even
	// though every node has degree 2 == K-1 < K, trivially colorable. Use
	// K=2 to force optimism: a path graph a-b-c with K=2 colors fine.
	ranges := []LiveRange{
		{Reg: reg(1), Start: 0, End: 2},
		{Reg: reg(2), Start: 1, End: 3},
		{Reg: reg(3), Start: 2, End: 4},
	}
	res := Color(ranges, 10, 2)
	if len(res.Spilled) != 0 {
		t.Errorf("path graph spilled with K=2: %v", res.Spilled)
	}
	checkColoring(t, ranges, res, 10)
}

func TestKernelRangesDotProduct(t *testing.T) {
	cfg := machine.Ideal16()
	l := fixtures.DotProduct(2)
	g := ddg.Build(l.Body, cfg, ddg.Options{Carried: true})
	s, err := modulo.Run(context.Background(), g, cfg, modulo.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ranges := KernelRanges(g, s)
	byReg := make(map[ir.Reg]LiveRange)
	for _, lr := range ranges {
		byReg[lr.Reg] = lr
	}
	if len(ranges) != len(l.Body.Registers()) {
		t.Errorf("ranges for %d of %d registers", len(ranges), len(l.Body.Registers()))
	}
	// Accumulators are live-in (invariant start) but defined in the body:
	// they must NOT be marked invariant, and their carried self-use must
	// stretch the lifetime across the II.
	accs := 0
	for _, lr := range ranges {
		if lr.Invariant {
			t.Errorf("%s marked invariant; dot product has no pure invariants", lr.Reg)
		}
		if lr.Len() > s.II {
			accs++
		}
		if lr.Len() <= 0 {
			t.Errorf("%s has empty range", lr.Reg)
		}
	}
	if accs == 0 {
		t.Error("no lifetime exceeds the II; accumulators must wrap")
	}
}

func TestKernelRangesInvariant(t *testing.T) {
	cfg := machine.Ideal16()
	l := ir.NewLoop("inv")
	b := ir.NewLoopBuilder(l)
	s0 := l.NewReg(ir.Float)
	x := b.Load(ir.Float, ir.MemRef{Base: "a", Coeff: 1})
	m := b.Mul(x, s0)
	b.Store(m, ir.MemRef{Base: "c", Coeff: 1})
	g := ddg.Build(l.Body, cfg, ddg.Options{Carried: true})
	s, err := modulo.Run(context.Background(), g, cfg, modulo.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, lr := range KernelRanges(g, s) {
		if lr.Reg == s0 {
			if !lr.Invariant {
				t.Error("pure live-in not marked invariant")
			}
			if lr.Start != 0 || lr.End != s.II {
				t.Errorf("invariant range [%d,%d), want [0,%d)", lr.Start, lr.End, s.II)
			}
		}
	}
}

func TestSuiteAllocationsValid(t *testing.T) {
	// Property test over generated loops: per-bank colorings never assign
	// overlapping colors to interfering ranges.
	cfg := machine.Ideal16()
	l := fixtures.DotProduct(6)
	g := ddg.Build(l.Body, cfg, ddg.Options{Carried: true})
	s, err := modulo.Run(context.Background(), g, cfg, modulo.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ranges := KernelRanges(g, s)
	for _, k := range []int{2, 4, 8, 32} {
		res := Color(ranges, s.II, k)
		checkColoring(t, ranges, res, s.II)
		if res.UsedColors > k {
			t.Errorf("K=%d: used %d colors", k, res.UsedColors)
		}
	}
}
