package regalloc

import (
	"reflect"
	"testing"

	"repro/internal/ir"
)

// Edge-case tests for the dense-index allocator paths: pre-colored
// conflict reporting and the determinism of spill ordering. Both re-run
// the allocator many times over identical inputs — with the pooled scratch
// dirty from prior runs — so any dependence on leftover scratch state or
// map iteration order shows up as a diff.

func lr(id int, class ir.Class, start, end int) LiveRange {
	return LiveRange{Reg: ir.Reg{ID: id, Class: class}, Start: start, End: end}
}

// TestPreColoredConflictReporting pins the reporting contract for an
// infeasible pre-coloring: two interfering ranges pinned to overlapping
// color blocks appear in Conflicts exactly once, in range-index order,
// and neither pinned register ever spills.
func TestPreColoredConflictReporting(t *testing.T) {
	// Three mutually interfering ranges; a and b pinned to the same color.
	ranges := []LiveRange{
		lr(1, ir.Int, 0, 4),
		lr(2, ir.Int, 1, 5),
		lr(3, ir.Int, 2, 6),
	}
	pre := map[ir.Reg]int{
		{ID: 1, Class: ir.Int}: 0,
		{ID: 2, Class: ir.Int}: 0,
	}
	var first *Result
	for trial := 0; trial < 20; trial++ {
		res := ColorPre(ranges, 8, 4, pre)
		wantPair := [2]ir.Reg{{ID: 1, Class: ir.Int}, {ID: 2, Class: ir.Int}}
		if len(res.Conflicts) != 1 || res.Conflicts[0] != wantPair {
			t.Fatalf("trial %d: Conflicts = %v, want exactly [%v]", trial, res.Conflicts, wantPair)
		}
		for _, s := range res.Spilled {
			if _, pinned := pre[s]; pinned {
				t.Fatalf("trial %d: pre-colored register %v spilled", trial, s)
			}
		}
		if res.Colors[ir.Reg{ID: 1, Class: ir.Int}] != 0 ||
			res.Colors[ir.Reg{ID: 2, Class: ir.Int}] != 0 {
			t.Fatalf("trial %d: pinned colors moved: %v", trial, res.Colors)
		}
		if first == nil {
			first = res
		} else if !reflect.DeepEqual(first, res) {
			t.Fatalf("trial %d: result diverged from first run:\nfirst: %+v\n  now: %+v", trial, first, res)
		}
	}
}

// TestSpillOrderingDeterministic forces spills and checks that the spill
// set is identical across repeated runs and reported in (class, ID) order
// — the contract the experiment tables and goldens rely on.
func TestSpillOrderingDeterministic(t *testing.T) {
	// 12 long ranges all alive at once with k=4: most must spill.
	var ranges []LiveRange
	for i := 0; i < 12; i++ {
		// Interleave IDs and classes so sortedness of the report is not an
		// accident of construction order.
		class := ir.Int
		if i%3 == 0 {
			class = ir.Float
		}
		ranges = append(ranges, lr(40-i, class, 0, 16))
	}
	var first *Result
	for trial := 0; trial < 20; trial++ {
		res := Color(ranges, 8, 4)
		if len(res.Spilled) == 0 {
			t.Fatal("fixture did not force any spills")
		}
		for i := 1; i < len(res.Spilled); i++ {
			a, b := res.Spilled[i-1], res.Spilled[i]
			if a.Class > b.Class || (a.Class == b.Class && a.ID >= b.ID) {
				t.Fatalf("trial %d: Spilled not in (class, ID) order: %v", trial, res.Spilled)
			}
		}
		if first == nil {
			first = res
		} else if !reflect.DeepEqual(first.Spilled, res.Spilled) ||
			!reflect.DeepEqual(first.Colors, res.Colors) {
			t.Fatalf("trial %d: allocation diverged:\nfirst: %+v %+v\n  now: %+v %+v",
				trial, first.Spilled, first.Colors, res.Spilled, res.Colors)
		}
	}
}
