package fixtures

import (
	"testing"

	"repro/internal/ir"
)

func TestPaperExampleShape(t *testing.T) {
	l, regs := PaperExample()
	if err := ir.VerifyLoop(l); err != nil {
		t.Fatal(err)
	}
	if len(l.Body.Ops) != 11 {
		t.Errorf("paper example has %d ops, Figure 2 lists 11", len(l.Body.Ops))
	}
	if l.Body.Depth != 0 {
		t.Error("paper example is straight-line code (depth 0)")
	}
	for _, name := range []string{"r1", "r2", "r5", "r10", "c2.0"} {
		if _, ok := regs[name]; !ok {
			t.Errorf("register map missing %q", name)
		}
	}
	// r2 (t) is used by both multiplies and the divide: three consumers.
	uses := 0
	for _, op := range l.Body.Ops {
		if op.ReadsReg(regs["r2"]) {
			uses++
		}
	}
	if uses != 3 {
		t.Errorf("r2 used by %d ops, the paper's t feeds 3", uses)
	}
}

func TestDotProduct(t *testing.T) {
	for _, u := range []int{1, 2, 8} {
		l := DotProduct(u)
		if err := ir.VerifyLoop(l); err != nil {
			t.Fatal(err)
		}
		if len(l.Body.Ops) != 4*u {
			t.Errorf("unroll %d: %d ops, want %d", u, len(l.Body.Ops), 4*u)
		}
		if got := len(l.Body.LiveIns()); got != u {
			t.Errorf("unroll %d: %d accumulator live-ins, want %d", u, got, u)
		}
	}
}

func TestAccumulator(t *testing.T) {
	for _, c := range []ir.Class{ir.Int, ir.Float} {
		l := Accumulator(c)
		if err := ir.VerifyLoop(l); err != nil {
			t.Fatal(err)
		}
		if len(l.Body.Ops) != 2 {
			t.Errorf("accumulator has %d ops", len(l.Body.Ops))
		}
	}
}
