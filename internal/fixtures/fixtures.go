// Package fixtures provides hand-built IR used by tests, examples and
// documentation — most importantly the paper's Section 4.2 worked example.
package fixtures

import (
	"repro/internal/ir"
)

// PaperExample builds the intermediate code of the paper's Figure 2 for
// the high-level statement
//
//	xpos = xpos + (xvel*t) + (xaccel*t*t/2.0)
//
// exactly as printed:
//
//	load r1, xvel
//	load r2, t
//	mult r5, r1, r2
//	load r3, xaccel
//	load r4, xpos
//	mult r7, r3, r2
//	add r6, r4, r5
//	div r8, r2, 2.0
//	mult r9, r7, r8
//	add r10, r6, r9
//	store xvel, r10
//
// The code is straight-line (depth 0); the example machine is
// machine.Example2x1 — two functional units, each with its own register
// bank, unit latencies. On the ideal (single-bank) machine the optimal
// schedule takes 7 cycles (Figure 1); the paper's partition costs two
// copies (of r2 and r6) and 9 cycles (Figure 3).
//
// "div r8, r2, 2.0" is modeled as a divide of r2 by a constant
// materialized in the preheader (a live-in register), keeping the
// operation shape (one def, r2 among the uses) identical to the paper's.
func PaperExample() (*ir.Loop, map[string]ir.Reg) {
	l := ir.NewLoop("paper.4_2.xpos")
	l.Body.Depth = 0 // straight-line code
	regs := make(map[string]ir.Reg)
	newReg := func(name string) ir.Reg {
		r := l.NewReg(ir.Float)
		regs[name] = r
		return r
	}
	half := newReg("c2.0") // the literal 2.0, live-in

	r1, r2, r3, r4 := newReg("r1"), newReg("r2"), newReg("r3"), newReg("r4")
	r5, r6, r7, r8 := newReg("r5"), newReg("r6"), newReg("r7"), newReg("r8")
	r9, r10 := newReg("r9"), newReg("r10")

	b := l.Body
	mem := func(base string) *ir.MemRef { return &ir.MemRef{Base: base} }
	b.Append(&ir.Op{Code: ir.Load, Class: ir.Float, Defs: []ir.Reg{r1}, Mem: mem("xvel")})
	b.Append(&ir.Op{Code: ir.Load, Class: ir.Float, Defs: []ir.Reg{r2}, Mem: mem("t")})
	b.Append(&ir.Op{Code: ir.Mul, Class: ir.Float, Defs: []ir.Reg{r5}, Uses: []ir.Reg{r1, r2}})
	b.Append(&ir.Op{Code: ir.Load, Class: ir.Float, Defs: []ir.Reg{r3}, Mem: mem("xaccel")})
	b.Append(&ir.Op{Code: ir.Load, Class: ir.Float, Defs: []ir.Reg{r4}, Mem: mem("xpos")})
	b.Append(&ir.Op{Code: ir.Mul, Class: ir.Float, Defs: []ir.Reg{r7}, Uses: []ir.Reg{r3, r2}})
	b.Append(&ir.Op{Code: ir.Add, Class: ir.Float, Defs: []ir.Reg{r6}, Uses: []ir.Reg{r4, r5}})
	b.Append(&ir.Op{Code: ir.Div, Class: ir.Float, Defs: []ir.Reg{r8}, Uses: []ir.Reg{r2, half}})
	b.Append(&ir.Op{Code: ir.Mul, Class: ir.Float, Defs: []ir.Reg{r9}, Uses: []ir.Reg{r7, r8}})
	b.Append(&ir.Op{Code: ir.Add, Class: ir.Float, Defs: []ir.Reg{r10}, Uses: []ir.Reg{r6, r9}})
	b.Append(&ir.Op{Code: ir.Store, Class: ir.Float, Uses: []ir.Reg{r10}, Mem: mem("xvel")})
	b.Renumber()
	return l, regs
}

// DotProduct builds a classic pipelinable loop: s += a[i] * b[i], unrolled
// u ways with one partial sum per lane. It is the running example of the
// dotproduct example program and several integration tests.
func DotProduct(u int) *ir.Loop {
	l := ir.NewLoop("fixtures.dotproduct")
	b := ir.NewLoopBuilder(l)
	for k := 0; k < u; k++ {
		acc := l.NewReg(ir.Float)
		la := b.Load(ir.Float, ir.MemRef{Base: "a", Coeff: u, Offset: k})
		lb := b.Load(ir.Float, ir.MemRef{Base: "b", Coeff: u, Offset: k})
		m := b.Mul(la, lb)
		b.AddInto(acc, acc, m)
	}
	return l
}

// Accumulator builds the smallest recurrence loop: acc += a[i]. Its RecMII
// is the add latency; tests use it to pin recurrence handling.
func Accumulator(class ir.Class) *ir.Loop {
	l := ir.NewLoop("fixtures.accumulator")
	b := ir.NewLoopBuilder(l)
	acc := l.NewReg(class)
	ld := b.Load(class, ir.MemRef{Base: "a", Coeff: 1})
	b.AddInto(acc, acc, ld)
	return l
}
