// Package sched implements cycle-driven list scheduling for acyclic blocks.
// The paper's framework is scheduler-agnostic ("can be applied using any
// scheduling method"); this scheduler serves two roles in the reproduction:
// it produces the "ideal schedules" for straight-line (non-loop) code in
// whole-function partitioning, and it provides the critical-path analysis
// (earliest start, latest start, slack) that feeds the RCG weighting
// heuristic's Flexibility term (Section 5).
package sched

import (
	"fmt"
	"sync"

	"repro/internal/ddg"
	"repro/internal/machine"
	"repro/internal/scratch"
)

// cell is one (cycle, cluster) slot's usage in the resource table.
type cell struct {
	count  int
	demand [machine.NumKinds]int
}

// listScratch pools one List call's working arrays. The resource table is
// a cycle-indexed slice (cycle-major, one cell per cluster) grown by
// append as the schedule lengthens — bounded by the schedule length, with
// none of the per-cycle map churn the earlier map[int][]cell design paid.
type listScratch struct {
	preds, earliest, height, heap []int
	cells                         []cell
}

var listPool = sync.Pool{New: func() any { return new(listScratch) }}

// Schedule is the result of list scheduling an acyclic block.
type Schedule struct {
	// Time is the issue cycle of each operation, indexed by op ID.
	Time []int
	// Cluster is the cluster each operation issued on (always 0 on a
	// monolithic machine).
	Cluster []int
	// Length is the makespan in cycles: the first cycle by which every
	// operation has completed.
	Length int
}

// Instructions groups operation IDs by issue cycle, for printing.
func (s *Schedule) Instructions() [][]int {
	maxT := 0
	for _, t := range s.Time {
		if t > maxT {
			maxT = t
		}
	}
	instrs := make([][]int, maxT+1)
	for id, t := range s.Time {
		instrs[t] = append(instrs[t], id)
	}
	return instrs
}

// IPC returns operations per cycle over the schedule.
func (s *Schedule) IPC() float64 {
	if s.Length == 0 {
		return 0
	}
	return float64(len(s.Time)) / float64(s.Length)
}

// ClusterOf maps an operation index to the cluster it must execute on;
// return AnyCluster to let the scheduler choose freely (monolithic model).
type ClusterOf func(opIdx int) int

// AnyCluster lets the scheduler place the operation on any cluster.
const AnyCluster = -1

// List schedules the acyclic dependence graph g on cfg. clusterOf may be
// nil, meaning every operation may issue anywhere (the ideal machine).
// It returns an error if g contains loop-carried edges (list scheduling is
// for acyclic code; use the modulo scheduler for loops).
func List(g *ddg.Graph, cfg *machine.Config, clusterOf ClusterOf) (*Schedule, error) {
	n := len(g.Ops)
	for _, outs := range g.Out {
		for _, e := range outs {
			if e.Distance != 0 {
				return nil, fmt.Errorf("sched: graph has loop-carried edge %d->%d; list scheduling requires acyclic code", e.From, e.To)
			}
		}
	}
	sc := listPool.Get().(*listScratch)
	defer listPool.Put(sc)
	height := heightsInto(sc, g, cfg)
	s := &Schedule{
		Time:    make([]int, n),
		Cluster: make([]int, n),
	}
	for i := range s.Time {
		s.Time[i] = -1
		s.Cluster[i] = 0
	}
	if n == 0 {
		return s, nil
	}

	// ready tracks operations whose predecessors have all been scheduled
	// and whose earliest feasible cycle is known.
	sc.preds = scratch.Ints(sc.preds, n)
	sc.earliest = scratch.Ints(sc.earliest, n)
	unscheduledPreds, earliest := sc.preds, sc.earliest
	scratch.FillInts(earliest, 0)
	for i := range g.Ops {
		unscheduledPreds[i] = len(g.In[i])
	}
	pq := &opHeap{items: sc.heap[:0], height: height}
	defer func() { sc.heap = pq.items[:0] }()
	for i := range g.Ops {
		if unscheduledPreds[i] == 0 {
			pq.push(i)
		}
	}

	perCluster := cfg.FUsPerCluster()
	nclus := cfg.Clusters
	sc.cells = sc.cells[:0] // cycle-major slot table, grown on demand
	cellAt := func(cycle, cluster int) *cell {
		for need := (cycle + 1) * nclus; len(sc.cells) < need; {
			sc.cells = append(sc.cells, cell{})
		}
		return &sc.cells[cycle*nclus+cluster]
	}
	kindOf := func(idx int) machine.FUKind { return machine.OpKind(g.Ops[idx]) }
	fits := func(cycle, cluster, idx int) bool {
		c := cellAt(cycle, cluster)
		if c.count >= perCluster {
			return false
		}
		if !cfg.Heterogeneous() {
			return true
		}
		d := c.demand
		d[kindOf(idx)]++
		return cfg.KindFits(d)
	}
	occupy := func(cycle, cluster, idx int) {
		c := cellAt(cycle, cluster)
		c.count++
		c.demand[kindOf(idx)]++
	}
	// pickSlot locates a free functional unit at the cycle; AnyCluster
	// requests take the least-loaded cluster with room, spreading the
	// ideal schedule across the machine.
	pickSlot := func(cycle, want, idx int) (int, bool) {
		if want != AnyCluster {
			if fits(cycle, want, idx) {
				return want, true
			}
			return 0, false
		}
		best, bestUsed := -1, perCluster
		for cl := 0; cl < cfg.Clusters; cl++ {
			if u := cellAt(cycle, cl).count; u < bestUsed && fits(cycle, cl, idx) {
				best, bestUsed = cl, u
			}
		}
		if best < 0 {
			return 0, false
		}
		return best, true
	}

	scheduled := 0
	for len(pq.items) > 0 {
		idx := pq.pop()
		want := AnyCluster
		if clusterOf != nil {
			want = clusterOf(idx)
		}
		t := earliest[idx]
		for {
			cl, ok := pickSlot(t, want, idx)
			if ok {
				occupy(t, cl, idx)
				s.Time[idx] = t
				s.Cluster[idx] = cl
				break
			}
			t++
		}
		scheduled++
		end := s.Time[idx] + cfg.Latency(g.Ops[idx])
		if end > s.Length {
			s.Length = end
		}
		for _, e := range g.Out[idx] {
			if est := s.Time[idx] + e.Latency; est > earliest[e.To] {
				earliest[e.To] = est
			}
			unscheduledPreds[e.To]--
			if unscheduledPreds[e.To] == 0 {
				pq.push(e.To)
			}
		}
	}
	if scheduled != n {
		return nil, fmt.Errorf("sched: scheduled %d of %d ops; dependence graph has a cycle", scheduled, n)
	}
	return s, nil
}

// opHeap orders operation indices by decreasing height, breaking ties by
// lower index, for deterministic schedules. The order is total, so the pop
// sequence is the sorted order regardless of heap internals; the typed
// push/pop avoid container/heap's interface boxing.
type opHeap struct {
	items  []int
	height []int
}

func (h *opHeap) less(a, b int) bool {
	if h.height[a] != h.height[b] {
		return h.height[a] > h.height[b]
	}
	return a < b
}

func (h *opHeap) push(x int) {
	h.items = append(h.items, x)
	i := len(h.items) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !h.less(h.items[i], h.items[p]) {
			break
		}
		h.items[i], h.items[p] = h.items[p], h.items[i]
		i = p
	}
}

func (h *opHeap) pop() int {
	s := h.items
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	s = s[:n]
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		c := l
		if r := l + 1; r < n && h.less(s[r], s[l]) {
			c = r
		}
		if !h.less(s[c], s[i]) {
			break
		}
		s[i], s[c] = s[c], s[i]
		i = c
	}
	h.items = s
	return top
}

// Heights returns, for each operation, the length of the longest latency
// path from the operation to any sink over distance-0 edges. Operations on
// the critical path have maximal height; the list scheduler and the modulo
// scheduler's acyclic fallback use it as the scheduling priority.
func Heights(g *ddg.Graph, cfg *machine.Config) []int {
	return heightsImpl(make([]int, len(g.Ops)), g, cfg)
}

// heightsInto computes Heights into the scratch's pooled buffer.
func heightsInto(sc *listScratch, g *ddg.Graph, cfg *machine.Config) []int {
	sc.height = scratch.Ints(sc.height, len(g.Ops))
	return heightsImpl(sc.height, g, cfg)
}

func heightsImpl(h []int, g *ddg.Graph, cfg *machine.Config) []int {
	n := len(g.Ops)
	// Distance-0 edges point forward in program order, so a reverse sweep
	// is a topological order.
	for i := n - 1; i >= 0; i-- {
		h[i] = cfg.Latency(g.Ops[i])
		for _, e := range g.Out[i] {
			if e.Distance != 0 {
				continue
			}
			if v := e.Latency + h[e.To]; v > h[i] {
				h[i] = v
			}
		}
	}
	return h
}

// Slack returns, for each operation, the scheduling freedom it has inside a
// schedule of the given length: latestStart - earliestStart computed over
// distance-0 edges. Critical-path operations have slack 0. The RCG
// weighting heuristic's Flexibility term is Slack+1 (Section 5 adds one "so
// that we avoid divide-by-zero errors").
func Slack(g *ddg.Graph, cfg *machine.Config, length int) []int {
	n := len(g.Ops)
	estart := make([]int, n)
	for i := 0; i < n; i++ {
		for _, e := range g.In[i] {
			if e.Distance != 0 {
				continue
			}
			if v := estart[e.From] + e.Latency; v > estart[i] {
				estart[i] = v
			}
		}
	}
	lstart := make([]int, n)
	for i := 0; i < n; i++ {
		lstart[i] = length - cfg.Latency(g.Ops[i])
		if lstart[i] < estart[i] {
			lstart[i] = estart[i] // never negative slack
		}
	}
	for i := n - 1; i >= 0; i-- {
		for _, e := range g.Out[i] {
			if e.Distance != 0 {
				continue
			}
			if v := lstart[e.To] - e.Latency; v < lstart[i] {
				lstart[i] = v
			}
		}
		if lstart[i] < estart[i] {
			lstart[i] = estart[i]
		}
	}
	slack := make([]int, n)
	for i := range slack {
		slack[i] = lstart[i] - estart[i]
	}
	return slack
}
