package sched

import (
	"math/rand"
	"testing"

	"repro/internal/ddg"
	"repro/internal/ir"
	"repro/internal/machine"
)

// checkList verifies dependence and resource constraints of a list
// schedule post hoc.
func checkList(t *testing.T, g *ddg.Graph, cfg *machine.Config, s *Schedule, clusterOf ClusterOf) {
	t.Helper()
	for from := range g.Out {
		for _, e := range g.Out[from] {
			if s.Time[e.To] < s.Time[from]+e.Latency {
				t.Errorf("dependence %d->%d violated: %d < %d+%d", from, e.To, s.Time[e.To], s.Time[from], e.Latency)
			}
		}
	}
	used := make(map[[2]int]int)
	for i := range g.Ops {
		if clusterOf != nil && clusterOf(i) != AnyCluster && s.Cluster[i] != clusterOf(i) {
			t.Errorf("op %d on cluster %d, pinned to %d", i, s.Cluster[i], clusterOf(i))
		}
		used[[2]int{s.Time[i], s.Cluster[i]}]++
	}
	for k, n := range used {
		if n > cfg.FUsPerCluster() {
			t.Errorf("cycle %d cluster %d issues %d ops on %d FUs", k[0], k[1], n, cfg.FUsPerCluster())
		}
	}
}

func straightLine() (*ir.Loop, *ddg.Graph, *machine.Config) {
	cfg := machine.Ideal16()
	l := ir.NewLoop("sl")
	b := ir.NewLoopBuilder(l)
	x := b.Load(ir.Float, ir.MemRef{Base: "a", Coeff: 1})
	y := b.Load(ir.Float, ir.MemRef{Base: "b", Coeff: 1})
	m := b.Mul(x, y)
	s := b.Add(m, y)
	b.Store(s, ir.MemRef{Base: "c", Coeff: 1})
	g := ddg.Build(l.Body, cfg, ddg.Options{Carried: false})
	return l, g, cfg
}

func TestListRespectsDependences(t *testing.T) {
	_, g, cfg := straightLine()
	s, err := List(g, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	checkList(t, g, cfg, s, nil)
	// Critical path: load(2) + mul(2) + add(2) + store(4) = 10 cycles.
	if s.Length != 10 {
		t.Errorf("makespan = %d, want 10", s.Length)
	}
}

func TestListRejectsCarriedEdges(t *testing.T) {
	cfg := machine.Ideal16()
	l := ir.NewLoop("c")
	b := ir.NewLoopBuilder(l)
	acc := l.NewReg(ir.Float)
	ld := b.Load(ir.Float, ir.MemRef{Base: "a", Coeff: 1})
	b.AddInto(acc, acc, ld)
	g := ddg.Build(l.Body, cfg, ddg.Options{Carried: true})
	if _, err := List(g, cfg, nil); err == nil {
		t.Error("list scheduler accepted a cyclic graph")
	}
}

func TestListRespectsWidth(t *testing.T) {
	cfg := machine.Example2x1() // 2-wide
	l := ir.NewLoop("w")
	b := ir.NewLoopBuilder(l)
	for k := 0; k < 10; k++ {
		b.Load(ir.Float, ir.MemRef{Base: "a", Coeff: 10, Offset: k})
	}
	g := ddg.Build(l.Body, cfg, ddg.Options{})
	s, err := List(g, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	checkList(t, g, cfg, s, nil)
	// 10 unit-latency loads on 2 FUs need 5 cycles.
	if s.Length != 5 {
		t.Errorf("makespan = %d, want 5", s.Length)
	}
}

func TestListPinnedClusters(t *testing.T) {
	cfg := machine.MustClustered16(4, machine.Embedded)
	l := ir.NewLoop("p")
	b := ir.NewLoopBuilder(l)
	for k := 0; k < 12; k++ {
		b.Load(ir.Float, ir.MemRef{Base: "a", Coeff: 12, Offset: k})
	}
	g := ddg.Build(l.Body, cfg, ddg.Options{})
	pin := func(i int) int { return 1 } // everything on cluster 1
	s, err := List(g, cfg, pin)
	if err != nil {
		t.Fatal(err)
	}
	checkList(t, g, cfg, s, pin)
	// 12 loads on one 4-wide cluster: 3 issue cycles, last load ends at 2+2.
	if s.Length != 4 {
		t.Errorf("makespan = %d, want 4", s.Length)
	}
}

func TestHeights(t *testing.T) {
	_, g, cfg := straightLine()
	h := Heights(g, cfg)
	// store: 4; add: 2+4=6; mul: 2+6=8; loads: 2+8=10 (load a) and for
	// load b the max of mul path (10) and add path (2+6=8) = 10.
	want := []int{10, 10, 8, 6, 4}
	for i, w := range want {
		if h[i] != w {
			t.Errorf("height[%d] = %d, want %d", i, h[i], w)
		}
	}
}

func TestSlackCriticalPathIsZero(t *testing.T) {
	_, g, cfg := straightLine()
	s, err := List(g, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	slack := Slack(g, cfg, s.Length)
	// Every op here sits on the 10-cycle critical path except nothing —
	// chain is serial, so all slacks are 0.
	for i, sl := range slack {
		if sl != 0 {
			t.Errorf("slack[%d] = %d, want 0 (serial chain)", i, sl)
		}
	}
}

func TestSlackParallelChain(t *testing.T) {
	cfg := machine.Ideal16()
	l := ir.NewLoop("s")
	b := ir.NewLoopBuilder(l)
	// Long chain: load->mul->store (2+5+4 = 11 int mul).
	x := b.Load(ir.Int, ir.MemRef{Base: "a", Coeff: 1})
	m := b.Mul(x, x)
	b.Store(m, ir.MemRef{Base: "c", Coeff: 1})
	// Short chain: load->store (2+4 = 6): 5 cycles of slack.
	y := b.Load(ir.Int, ir.MemRef{Base: "b", Coeff: 1})
	b.Store(y, ir.MemRef{Base: "d", Coeff: 1})
	g := ddg.Build(l.Body, cfg, ddg.Options{})
	slack := Slack(g, cfg, 11)
	for i := 0; i < 3; i++ {
		if slack[i] != 0 {
			t.Errorf("critical op %d slack = %d, want 0", i, slack[i])
		}
	}
	if slack[3] != 5 || slack[4] != 5 {
		t.Errorf("short chain slacks = %d,%d, want 5,5", slack[3], slack[4])
	}
}

func TestListRandomDAGsValid(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cfgs := []*machine.Config{machine.Ideal16(), machine.MustClustered16(4, machine.Embedded), machine.Example2x1()}
	for trial := 0; trial < 50; trial++ {
		l := ir.NewLoop("r")
		b := ir.NewLoopBuilder(l)
		var vals []ir.Reg
		n := 3 + rng.Intn(25)
		for k := 0; k < n; k++ {
			switch {
			case len(vals) < 2 || rng.Intn(3) == 0:
				vals = append(vals, b.Load(ir.Float, ir.MemRef{Base: "a", Coeff: n, Offset: k}))
			default:
				x := vals[rng.Intn(len(vals))]
				y := vals[rng.Intn(len(vals))]
				vals = append(vals, b.Add(x, y))
			}
		}
		b.Store(vals[len(vals)-1], ir.MemRef{Base: "out", Coeff: 1})
		for _, cfg := range cfgs {
			g := ddg.Build(l.Body, cfg, ddg.Options{})
			s, err := List(g, cfg, nil)
			if err != nil {
				t.Fatal(err)
			}
			checkList(t, g, cfg, s, nil)
		}
	}
}

func TestInstructionsAndIPC(t *testing.T) {
	_, g, cfg := straightLine()
	s, err := List(g, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	instrs := s.Instructions()
	total := 0
	for _, row := range instrs {
		total += len(row)
	}
	if total != len(g.Ops) {
		t.Errorf("Instructions covers %d ops, want %d", total, len(g.Ops))
	}
	if ipc := s.IPC(); ipc <= 0 || ipc > float64(cfg.Width) {
		t.Errorf("IPC = %f out of range", ipc)
	}
}
