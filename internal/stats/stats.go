// Package stats provides the small statistical toolkit the experiment
// harness needs: arithmetic and harmonic means (Table 2 reports both,
// "since the arithmetic mean tends to be weighted towards large numbers,
// while the harmonic mean permits more contribution by smaller values")
// and the degradation histogram bucketing of Figures 5-7.
package stats

import (
	"fmt"
	"sort"
	"strings"
)

// Mean returns the arithmetic mean of xs (0 for an empty slice).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// HarmonicMean returns the harmonic mean of xs: n / sum(1/x). Zero or
// negative entries would be undefined; they contribute as if 1 to keep the
// harness robust (degradations are always >= 100, so this never triggers
// in practice).
func HarmonicMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		if x <= 0 {
			x = 1
		}
		sum += 1 / x
	}
	return float64(len(xs)) / sum
}

// HistogramBuckets are the Figures 5-7 bins for degradation percentages:
// exactly zero, then ten-percent-wide bins, then everything at or above
// ninety percent.
var HistogramBuckets = []string{
	"0.00%", "<10%", "<20%", "<30%", "<40%", "<50%",
	"<60%", "<70%", "<80%", "<90%", ">90%",
}

// Histogram buckets degradation percentages (0 == no degradation) into the
// Figures 5-7 bins and returns per-bucket percentages of the population.
func Histogram(degradations []float64) []float64 {
	counts := make([]int, len(HistogramBuckets))
	for _, d := range degradations {
		counts[bucketOf(d)]++
	}
	out := make([]float64, len(counts))
	if len(degradations) == 0 {
		return out
	}
	for i, c := range counts {
		out[i] = 100 * float64(c) / float64(len(degradations))
	}
	return out
}

func bucketOf(d float64) int {
	switch {
	case d <= 0:
		return 0
	case d >= 90:
		return len(HistogramBuckets) - 1
	default:
		return 1 + int(d/10)
	}
}

// FormatHistogram renders labeled bucket percentages on one line per
// bucket, with a crude bar for terminal reading.
func FormatHistogram(title string, rows map[string][]float64) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", title)
	// Stable series order: Embedded before Copy Unit, then lexicographic.
	names := orderedSeries(rows)
	fmt.Fprintf(&sb, "%-8s", "bucket")
	for _, n := range names {
		fmt.Fprintf(&sb, "  %12s", n)
	}
	sb.WriteByte('\n')
	for i, b := range HistogramBuckets {
		fmt.Fprintf(&sb, "%-8s", b)
		for _, n := range names {
			fmt.Fprintf(&sb, "  %11.1f%%", rows[n][i])
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

func orderedSeries(rows map[string][]float64) []string {
	var names []string
	for _, pref := range []string{"Embedded", "Copy Unit"} {
		if _, ok := rows[pref]; ok {
			names = append(names, pref)
		}
	}
	var rest []string
	for n := range rows {
		if n != "Embedded" && n != "Copy Unit" {
			rest = append(rest, n)
		}
	}
	sort.Strings(rest)
	return append(names, rest...)
}
