package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("mean of nothing must be 0")
	}
	if got := Mean([]float64{100, 120, 140}); got != 120 {
		t.Errorf("mean = %f", got)
	}
}

func TestHarmonicMean(t *testing.T) {
	if HarmonicMean(nil) != 0 {
		t.Error("harmonic mean of nothing must be 0")
	}
	// Harmonic mean of {100, 300}: 2/(1/100+1/300) = 150.
	if got := HarmonicMean([]float64{100, 300}); math.Abs(got-150) > 1e-9 {
		t.Errorf("harmonic mean = %f, want 150", got)
	}
	if got := HarmonicMean([]float64{120, 120}); math.Abs(got-120) > 1e-9 {
		t.Errorf("harmonic of equals = %f", got)
	}
}

func TestHarmonicAtMostArithmetic(t *testing.T) {
	// The paper reports both because the harmonic mean weighs small values
	// more: harmonic <= arithmetic always (for positive data).
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, r := range raw {
			xs[i] = 100 + float64(r%400)
		}
		return HarmonicMean(xs) <= Mean(xs)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogramBuckets(t *testing.T) {
	degs := []float64{0, 0, 5, 15, 95, 150}
	h := Histogram(degs)
	if len(h) != len(HistogramBuckets) {
		t.Fatalf("bucket count %d", len(h))
	}
	checks := map[int]float64{
		0:  100.0 * 2 / 6, // two exact zeros
		1:  100.0 / 6,     // 5% -> <10%
		2:  100.0 / 6,     // 15% -> <20%
		10: 100.0 * 2 / 6, // 95 and 150 -> >90%
	}
	for idx, want := range checks {
		if math.Abs(h[idx]-want) > 1e-9 {
			t.Errorf("bucket %s = %f, want %f", HistogramBuckets[idx], h[idx], want)
		}
	}
}

func TestHistogramSumsTo100(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		degs := make([]float64, len(raw))
		for i, r := range raw {
			degs[i] = float64(r % 200)
		}
		sum := 0.0
		for _, v := range Histogram(degs) {
			sum += v
		}
		return math.Abs(sum-100) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogramEmpty(t *testing.T) {
	for _, v := range Histogram(nil) {
		if v != 0 {
			t.Error("empty histogram must be all zeros")
		}
	}
}

func TestBucketBoundaries(t *testing.T) {
	tests := []struct {
		d    float64
		want int
	}{
		{0, 0}, {-1, 0}, {0.1, 1}, {9.99, 1}, {10, 2}, {89.9, 9}, {90, 10}, {1000, 10},
	}
	for _, tt := range tests {
		if got := bucketOf(tt.d); got != tt.want {
			t.Errorf("bucketOf(%f) = %d (%s), want %d (%s)", tt.d, got, HistogramBuckets[got], tt.want, HistogramBuckets[tt.want])
		}
	}
}

func TestFormatHistogram(t *testing.T) {
	rows := map[string][]float64{
		"Embedded":  Histogram([]float64{0, 10, 20}),
		"Copy Unit": Histogram([]float64{0, 0, 50}),
	}
	out := FormatHistogram("title", rows)
	if !strings.Contains(out, "title") || !strings.Contains(out, "Embedded") || !strings.Contains(out, "Copy Unit") {
		t.Errorf("histogram rendering incomplete:\n%s", out)
	}
	// Embedded must come before Copy Unit (paper order).
	if strings.Index(out, "Embedded") > strings.Index(out, "Copy Unit") {
		t.Error("series order wrong")
	}
}
