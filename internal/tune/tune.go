// Package tune implements the paper's proposed future work (Section 7):
// "fine-tuning our greedy heuristic by using off-line stochastic
// optimization techniques". It searches the space of RCG weighting
// coefficients (core.Weights) with a simulated-annealing-flavored random
// search: multiplicative perturbations of every coefficient, acceptance of
// strict improvements plus temperature-decayed uphill moves, and restarts
// from the incumbent. Everything is seeded and deterministic so tuning
// runs are reproducible.
package tune

import (
	"math"
	"math/rand"

	"repro/internal/codegen"
	"repro/internal/core"
	"repro/internal/exper"
	"repro/internal/ir"
	"repro/internal/machine"
)

// Objective scores a weight vector; lower is better.
type Objective func(core.Weights) float64

// FailurePenalty is the objective cost charged per failed loop by
// ScoreSuite. MeanDegradation excludes Err != nil outcomes from its mean,
// so without the penalty a weight vector that makes hard loops fail to
// compile would drop them from its own score and could look strictly
// better than a vector that compiles everything. The penalty dwarfs any
// achievable degradation mean (the paper's worst cells sit near 160), so
// one failure loses to every all-compiling candidate.
const FailurePenalty = 1e6

// ScoreSuite collapses a suite run into the tuning objective: the
// arithmetic-mean normalized degradation averaged over the machines, plus
// FailurePenalty for every failed (loop, machine) cell. Exposed so the
// penalty semantics are testable without running a compile.
func ScoreSuite(results []*exper.ConfigResult) float64 {
	total := 0.0
	failures := 0
	for _, r := range results {
		a, _ := r.MeanDegradation()
		total += a
		for i := range r.Outcomes {
			if r.Outcomes[i].Err != nil {
				failures++
			}
		}
	}
	return total/float64(len(results)) + float64(failures)*FailurePenalty
}

// SuiteObjective returns the natural objective of the paper's experiments:
// the arithmetic-mean normalized degradation of the given loops, averaged
// over the given machines, with failed loops charged FailurePenalty each
// (see ScoreSuite). Compilation skips register assignment (only the II
// matters to the metric).
func SuiteObjective(loops []*ir.Loop, cfgs []*machine.Config, workers int) Objective {
	return func(w core.Weights) float64 {
		weights := w
		results := exper.RunSuite(loops, cfgs, exper.Options{
			Workers: workers,
			Codegen: codegen.Options{Weights: &weights, SkipAlloc: true},
		})
		return ScoreSuite(results)
	}
}

// Step records one accepted point of the search.
type Step struct {
	Iteration int
	Weights   core.Weights
	Score     float64
	// Improved marks the points that strictly improved on the best score
	// seen so far; the rest are temperature-accepted uphill moves.
	Improved bool
}

// Options controls the search.
type Options struct {
	// Iterations is the number of candidate evaluations (default 60).
	Iterations int
	// Seed fixes the perturbation stream.
	Seed int64
	// Start is the initial point; the zero value means DefaultWeights.
	Start *core.Weights
}

// Result is the search outcome.
type Result struct {
	// Best is the best weight vector found; Score its objective value.
	Best  core.Weights
	Score float64
	// Start and StartScore record the initial point for comparison.
	Start      core.Weights
	StartScore float64
	// History lists every accepted point in order — strict improvements
	// (Improved set) and temperature-accepted uphill moves alike.
	History []Step
}

// Search runs the stochastic optimization.
func Search(obj Objective, opt Options) *Result {
	iters := opt.Iterations
	if iters <= 0 {
		iters = 60
	}
	start := core.DefaultWeights()
	if opt.Start != nil {
		start = *opt.Start
	}
	rng := rand.New(rand.NewSource(opt.Seed))

	res := &Result{Start: start, StartScore: obj(start)}
	res.Best, res.Score = start, res.StartScore
	cur, curScore := start, res.StartScore

	for i := 0; i < iters; i++ {
		temp := 1.0 - float64(i)/float64(iters) // linear cooling
		cand := perturb(cur, rng, 0.1+0.4*temp)
		score := obj(cand)
		accept := score < curScore ||
			rng.Float64() < math.Exp((curScore-score)/(2*temp+1e-9))
		if accept {
			cur, curScore = cand, score
			// res.Score <= curScore always, so a strict improvement is
			// always an accepted move: recording inside the accept branch
			// loses nothing.
			improved := score < res.Score
			if improved {
				res.Best, res.Score = cand, score
			}
			res.History = append(res.History, Step{Iteration: i, Weights: cand, Score: score, Improved: improved})
		}
		// Restart from the incumbent when the walk has drifted far above.
		if curScore > res.Score+restartBand(res.Score) {
			cur, curScore = res.Best, res.Score
		}
	}
	return res
}

// restartBand returns how far above the incumbent score the walk may
// drift before restarting from the incumbent. The band is proportional to
// the score's magnitude with an additive floor: the old multiplicative
// rule (restart when cur > best*1.15) degenerated as the incumbent
// approached 0 — every positive walk point triggered an immediate
// restart, collapsing the annealing walk into greedy hill-climbing.
func restartBand(best float64) float64 {
	return 0.15 * (math.Abs(best) + 1)
}

// perturb multiplies each continuous coefficient by exp(N(0, sigma)),
// keeping every knob positive and the discrete MaxDepth fixed.
func perturb(w core.Weights, rng *rand.Rand, sigma float64) core.Weights {
	bump := func(v float64) float64 {
		nv := v * math.Exp(rng.NormFloat64()*sigma)
		if nv < 1e-3 {
			nv = 1e-3
		}
		if nv > 1e3 {
			nv = 1e3
		}
		return nv
	}
	w.Affinity = bump(w.Affinity)
	w.AntiAffinity = bump(w.AntiAffinity)
	w.CriticalBonus = bump(w.CriticalBonus)
	w.DepthBase = bump(w.DepthBase)
	w.Balance = bump(w.Balance)
	w.InvariantScale = bump(w.InvariantScale)
	w.RecurrenceBonus = bump(w.RecurrenceBonus)
	return w
}
