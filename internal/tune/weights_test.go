package tune

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
)

func TestWeightsRoundTrip(t *testing.T) {
	w := core.DefaultWeights()
	w.Affinity = 3.25
	w.RecurrenceBonus = 0.125
	path := filepath.Join(t.TempDir(), "w.json")
	if err := SaveWeights(path, w); err != nil {
		t.Fatal(err)
	}
	got, err := LoadWeights(path)
	if err != nil {
		t.Fatal(err)
	}
	if *got != w {
		t.Fatalf("round trip changed the vector:\nsaved  %+v\nloaded %+v", w, *got)
	}
}

func TestLoadWeightsPartial(t *testing.T) {
	path := filepath.Join(t.TempDir(), "w.json")
	if err := os.WriteFile(path, []byte(`{"Affinity": 7}`), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := LoadWeights(path)
	if err != nil {
		t.Fatal(err)
	}
	want := core.DefaultWeights()
	want.Affinity = 7
	if *got != want {
		t.Fatalf("partial override: got %+v, want defaults with Affinity=7", *got)
	}
}

func TestLoadWeightsRejectsUnknownField(t *testing.T) {
	path := filepath.Join(t.TempDir(), "w.json")
	if err := os.WriteFile(path, []byte(`{"Afinity": 7}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadWeights(path); err == nil {
		t.Fatal("misspelled field accepted silently")
	}
}

func TestLoadWeightsMissingFile(t *testing.T) {
	if _, err := LoadWeights(filepath.Join(t.TempDir(), "absent.json")); err == nil {
		t.Fatal("missing file accepted")
	}
}
