package tune

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/loopgen"
	"repro/internal/machine"
)

// quadratic is a synthetic objective with a known optimum, used to test
// the search mechanics without compiling anything.
func quadratic(w core.Weights) float64 {
	d := func(v, opt float64) float64 { x := math.Log(v / opt); return x * x }
	return d(w.Affinity, 3) + d(w.Balance, 0.8) + d(w.AntiAffinity, 0.5)
}

func TestSearchImprovesSyntheticObjective(t *testing.T) {
	res := Search(quadratic, Options{Iterations: 400, Seed: 9})
	if res.Score >= res.StartScore {
		t.Fatalf("search did not improve: %f -> %f", res.StartScore, res.Score)
	}
	if res.Score > 0.5 {
		t.Errorf("score %f far from the optimum", res.Score)
	}
	if len(res.History) == 0 {
		t.Error("no improvements recorded")
	}
}

func TestSearchDeterministic(t *testing.T) {
	a := Search(quadratic, Options{Iterations: 100, Seed: 4})
	b := Search(quadratic, Options{Iterations: 100, Seed: 4})
	if a.Score != b.Score || a.Best != b.Best {
		t.Error("same seed produced different results")
	}
}

func TestSearchNeverReturnsWorseThanStart(t *testing.T) {
	res := Search(quadratic, Options{Iterations: 5, Seed: 1})
	if res.Score > res.StartScore {
		t.Errorf("best %f worse than start %f", res.Score, res.StartScore)
	}
}

func TestSearchKeepsWeightsPositive(t *testing.T) {
	res := Search(quadratic, Options{Iterations: 200, Seed: 2})
	w := res.Best
	for _, v := range []float64{w.Affinity, w.AntiAffinity, w.CriticalBonus, w.DepthBase, w.Balance, w.InvariantScale} {
		if v <= 0 {
			t.Errorf("non-positive coefficient in tuned weights: %+v", w)
		}
	}
	if w.MaxDepth != core.DefaultWeights().MaxDepth {
		t.Error("MaxDepth must not be perturbed")
	}
}

// TestSuiteObjectiveTunes runs a miniature version of the paper's proposed
// experiment: 15 training loops, one machine, a short search. It must not
// end worse than the hand-set defaults (Search keeps the incumbent), and
// the objective itself must be deterministic.
func TestSuiteObjectiveTunes(t *testing.T) {
	loops := loopgen.Generate(loopgen.Params{N: 15, Seed: 77})
	cfgs := []*machine.Config{machine.MustClustered16(4, machine.Embedded)}
	obj := SuiteObjective(loops, cfgs, 0)
	base := obj(core.DefaultWeights())
	if again := obj(core.DefaultWeights()); again != base {
		t.Fatalf("objective nondeterministic: %f vs %f", base, again)
	}
	res := Search(obj, Options{Iterations: 12, Seed: 3})
	if res.Score > base {
		t.Errorf("tuning ended worse than default: %f > %f", res.Score, base)
	}
	t.Logf("default %.2f -> tuned %.2f with %+v", base, res.Score, res.Best)
}
