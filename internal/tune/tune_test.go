package tune

import (
	"errors"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/exper"
	"repro/internal/loopgen"
	"repro/internal/machine"
)

// quadratic is a synthetic objective with a known optimum, used to test
// the search mechanics without compiling anything.
func quadratic(w core.Weights) float64 {
	d := func(v, opt float64) float64 { x := math.Log(v / opt); return x * x }
	return d(w.Affinity, 3) + d(w.Balance, 0.8) + d(w.AntiAffinity, 0.5)
}

func TestSearchImprovesSyntheticObjective(t *testing.T) {
	res := Search(quadratic, Options{Iterations: 400, Seed: 9})
	if res.Score >= res.StartScore {
		t.Fatalf("search did not improve: %f -> %f", res.StartScore, res.Score)
	}
	if res.Score > 0.5 {
		t.Errorf("score %f far from the optimum", res.Score)
	}
	if len(res.History) == 0 {
		t.Error("no improvements recorded")
	}
}

func TestSearchDeterministic(t *testing.T) {
	a := Search(quadratic, Options{Iterations: 100, Seed: 4})
	b := Search(quadratic, Options{Iterations: 100, Seed: 4})
	if a.Score != b.Score || a.Best != b.Best {
		t.Error("same seed produced different results")
	}
}

func TestSearchNeverReturnsWorseThanStart(t *testing.T) {
	res := Search(quadratic, Options{Iterations: 5, Seed: 1})
	if res.Score > res.StartScore {
		t.Errorf("best %f worse than start %f", res.Score, res.StartScore)
	}
}

func TestSearchKeepsWeightsPositive(t *testing.T) {
	res := Search(quadratic, Options{Iterations: 200, Seed: 2})
	w := res.Best
	for _, v := range []float64{w.Affinity, w.AntiAffinity, w.CriticalBonus, w.DepthBase, w.Balance, w.InvariantScale} {
		if v <= 0 {
			t.Errorf("non-positive coefficient in tuned weights: %+v", w)
		}
	}
	if w.MaxDepth != core.DefaultWeights().MaxDepth {
		t.Error("MaxDepth must not be perturbed")
	}
}

// TestScoreSuitePenalizesFailures pins the fixed objective bug: a weight
// vector that makes hard loops fail to compile used to drop them from its
// own mean (MeanDegradation excludes Err != nil outcomes) and could score
// strictly better than one that compiles everything. The failure penalty
// must make the failing candidate lose, decisively. The pipeline's
// guaranteed serial-schedule fallback means no weight vector can induce a
// real compile failure on valid loops, so the scenario is modeled with
// synthetic outcomes — exactly the shape RunSuite produces.
func TestScoreSuitePenalizesFailures(t *testing.T) {
	honest := []*exper.ConfigResult{{Outcomes: []exper.LoopOutcome{
		{Loop: "easy", Degradation: 110},
		{Loop: "hard1", Degradation: 160},
		{Loop: "hard2", Degradation: 175},
	}}}
	// The cheating vector: better survivor mean, but only because the two
	// hard loops failed out of the average entirely.
	cheat := []*exper.ConfigResult{{Outcomes: []exper.LoopOutcome{
		{Loop: "easy", Degradation: 100},
		{Loop: "hard1", Err: errors.New("no schedule found")},
		{Loop: "hard2", Err: errors.New("no schedule found")},
	}}}
	hs, cs := ScoreSuite(honest), ScoreSuite(cheat)
	if cs <= hs {
		t.Fatalf("failure-inducing candidate still wins: %f <= %f", cs, hs)
	}
	if cs < 2*FailurePenalty {
		t.Errorf("two failures must cost at least 2*FailurePenalty, got %f", cs)
	}
	if hs >= FailurePenalty {
		t.Errorf("all-compiling candidate must not be penalized, got %f", hs)
	}
}

// TestRestartBandZeroIncumbent pins the restart-rule fix: the old
// multiplicative rule (restart when cur > best*1.15) meant a zero
// incumbent restarted on every positive walk point.
func TestRestartBandZeroIncumbent(t *testing.T) {
	if b := restartBand(0); b <= 0 {
		t.Fatalf("restart band at a zero incumbent must stay positive, got %f", b)
	}
	// A walk point slightly above a zero incumbent must be tolerated...
	if cur, best := 0.1, 0.0; cur > best+restartBand(best) {
		t.Errorf("walk point %f above zero incumbent triggers a restart", cur)
	}
	// ...while far drift above a nonzero incumbent still restarts.
	if cur, best := 100.0, 10.0; cur <= best+restartBand(best) {
		t.Errorf("far-drifted walk point %f does not restart", cur)
	}
}

// TestSearchZeroIncumbentKeepsWalking drives Search with an objective
// whose optimum is 0 at the start point: the annealing walk must still
// accept (and record) uphill moves instead of collapsing into greedy
// hill-climbing via per-iteration restarts.
func TestSearchZeroIncumbentKeepsWalking(t *testing.T) {
	start := core.DefaultWeights()
	obj := func(w core.Weights) float64 {
		if w == start {
			return 0
		}
		return 0.05
	}
	res := Search(obj, Options{Iterations: 50, Seed: 5, Start: &start})
	if res.Score != 0 {
		t.Fatalf("search lost the zero incumbent: %f", res.Score)
	}
	uphill := 0
	for _, s := range res.History {
		if !s.Improved {
			uphill++
		}
	}
	if uphill == 0 {
		t.Error("zero incumbent collapsed the walk: no uphill move was accepted")
	}
}

// TestHistoryRecordsAcceptedMoves pins the documented History contract:
// every accepted point appears, strict best-improvements carry Improved,
// and temperature-accepted uphill moves are present rather than vanishing.
func TestHistoryRecordsAcceptedMoves(t *testing.T) {
	res := Search(quadratic, Options{Iterations: 400, Seed: 9})
	sawUphill, sawImproved := false, false
	best := res.StartScore
	last := -1
	for _, s := range res.History {
		if s.Iteration <= last {
			t.Fatalf("history out of iteration order at %d", s.Iteration)
		}
		last = s.Iteration
		if s.Improved {
			sawImproved = true
			if s.Score >= best {
				t.Errorf("improved step %d does not improve: %f >= %f", s.Iteration, s.Score, best)
			}
			best = s.Score
		} else {
			sawUphill = true
			if s.Score < best {
				t.Errorf("step %d beats the incumbent but is not marked Improved", s.Iteration)
			}
		}
	}
	if !sawImproved {
		t.Error("no improvements recorded")
	}
	if !sawUphill {
		t.Error("no uphill-accepted moves recorded; History promises every accepted point")
	}
	if best != res.Score {
		t.Errorf("last improvement %f != final score %f", best, res.Score)
	}
}

// TestSuiteObjectiveTunes runs a miniature version of the paper's proposed
// experiment: 15 training loops, one machine, a short search. It must not
// end worse than the hand-set defaults (Search keeps the incumbent), and
// the objective itself must be deterministic.
func TestSuiteObjectiveTunes(t *testing.T) {
	loops := loopgen.Generate(loopgen.Params{N: 15, Seed: 77})
	cfgs := []*machine.Config{machine.MustClustered16(4, machine.Embedded)}
	obj := SuiteObjective(loops, cfgs, 0)
	base := obj(core.DefaultWeights())
	if again := obj(core.DefaultWeights()); again != base {
		t.Fatalf("objective nondeterministic: %f vs %f", base, again)
	}
	res := Search(obj, Options{Iterations: 12, Seed: 3})
	if res.Score > base {
		t.Errorf("tuning ended worse than default: %f > %f", res.Score, base)
	}
	t.Logf("default %.2f -> tuned %.2f with %+v", base, res.Score, res.Best)
}
