package tune

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"

	"repro/internal/core"
)

// LoadWeights reads a core.Weights vector from a JSON file — the format
// SaveWeights writes and the -weights flag of swpc and experiments
// consumes. Fields absent from the file keep the paper's defaults, so a
// partial override like {"Affinity": 3} is valid; unknown fields are
// rejected so a typo cannot silently leave a knob at its default.
func LoadWeights(path string) (*core.Weights, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("tune: reading weights: %w", err)
	}
	w := core.DefaultWeights()
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&w); err != nil {
		return nil, fmt.Errorf("tune: parsing weights %s: %w", path, err)
	}
	return &w, nil
}

// SaveWeights writes the vector as indented JSON, round-trippable through
// LoadWeights.
func SaveWeights(path string, w core.Weights) error {
	data, err := json.MarshalIndent(w, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
