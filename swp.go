// Package swp is the public facade of the reproduction of "Register
// Assignment for Software Pipelining with Partitioned Register Banks"
// (Hiser, Carr, Sweany, Beaty; IPPS 2000).
//
// It wires together the internal substrates — IR, machine models,
// dependence graphs, modulo scheduling, the register component graph
// partitioner, copy insertion and graph-coloring register assignment —
// behind a handful of one-call entry points used by the examples, the
// command-line tools and the benchmark harness:
//
//	loops := swp.Suite()                      // the 211-loop workload
//	cfg := swp.Machine(4, swp.Embedded)       // 16-wide, 4 clusters of 4
//	res, err := swp.CompileLoop(loops[0], cfg)
//	fmt.Println(res.Degradation())            // 100 = no degradation
//
// or, for the full evaluation:
//
//	results := swp.RunExperiments(loops, swp.PaperMachines(), 0)
//	fmt.Println(swp.Table1(results))
//	fmt.Println(swp.Table2(results))
//	fmt.Println(swp.FigureHistogram(results, 4))
package swp

import (
	"context"

	"repro/internal/codegen"
	"repro/internal/ddg"
	"repro/internal/exper"
	"repro/internal/ir"
	"repro/internal/loopgen"
	"repro/internal/machine"
	"repro/internal/modulo"
	"repro/internal/partition"
	"repro/internal/transform"
	"repro/internal/tune"
)

// CopyModel selects how inter-cluster copies are supported.
type CopyModel = machine.CopyModel

// Copy models, re-exported from the machine package.
const (
	Embedded = machine.Embedded
	CopyUnit = machine.CopyUnit
)

// Suite returns the deterministic 211-loop workload standing in for the
// paper's SPEC95 loop suite.
func Suite() []*ir.Loop { return loopgen.Suite() }

// SmallSuite returns a reduced deterministic workload of n loops for quick
// experiments and tests.
func SmallSuite(n int) []*ir.Loop {
	return loopgen.Generate(loopgen.Params{N: n, Seed: loopgen.DefaultParams().Seed})
}

// Livermore returns the hand-written adaptations of twelve classic
// Livermore loops — a second, recognizable workload beside the synthetic
// suite.
func Livermore() []*ir.Loop { return loopgen.Livermore() }

// Ideal returns the paper's ideal machine: 16-wide, one monolithic bank.
func Ideal() *machine.Config { return machine.Ideal16() }

// Machine returns one of the paper's clustered machines: 16-wide with the
// given cluster count (2, 4 or 8) and copy model.
func Machine(clusters int, model CopyModel) *machine.Config {
	return machine.MustClustered16(clusters, model)
}

// PaperMachines returns the six machines of Tables 1-2 in column order.
func PaperMachines() []*machine.Config { return machine.PaperConfigs() }

// CompileLoop runs the full five-step pipeline (ideal schedule, RCG
// partition, copy insertion, clustered re-schedule, per-bank coloring) on
// one loop with the paper's defaults.
//
// Deprecated: use New().Compile with a context; CompileLoop cannot be
// cancelled. It remains as a thin wrapper and will not be removed.
func CompileLoop(l *ir.Loop, cfg *machine.Config) (*codegen.Result, error) {
	return New().Compile(context.Background(), l, cfg)
}

// RunExperiments compiles every loop on every machine with the paper's
// default pipeline, using up to workers goroutines (0 = all CPUs).
//
// Deprecated: use New(WithWorkers(n)).Run with a context; RunExperiments
// cannot be cancelled. It remains as a thin wrapper and will not be
// removed.
func RunExperiments(loops []*ir.Loop, cfgs []*machine.Config, workers int) []*exper.ConfigResult {
	results, err := New(WithWorkers(workers)).Run(context.Background(), loops, cfgs)
	if err != nil {
		// Run only fails when its context does, and Background has none.
		panic(err)
	}
	return results
}

// Table1 renders the IPC table (paper Table 1) for PaperMachines-ordered
// results.
func Table1(results []*exper.ConfigResult) string { return exper.Table1(results) }

// Table2 renders the normalized degradation table (paper Table 2).
func Table2(results []*exper.ConfigResult) string { return exper.Table2(results) }

// FigureHistogram renders the degradation histogram for the machines with
// the given cluster count (paper Figures 5, 6 and 7 for 2, 4 and 8).
func FigureHistogram(results []*exper.ConfigResult, clusters int) string {
	return exper.Figure(results, clusters)
}

// Summary renders a one-line-per-machine overview of a run.
func Summary(results []*exper.ConfigResult) string { return exper.Summary(results) }

// CompileStraightLine runs the non-loop pipeline variant (list scheduling
// instead of modulo scheduling) on a block of straight-line code wrapped
// in a Loop container, as the paper's Section 4.2 worked example does.
//
// Deprecated: use New().CompileBlock with a context.
func CompileStraightLine(l *ir.Loop, cfg *machine.Config) (*codegen.BlockResult, error) {
	return New().CompileBlock(context.Background(), l, cfg)
}

// CompileFunction partitions a whole function's registers at once — the
// paper's "global in nature" mode — and schedules every block under the
// shared assignment.
//
// Deprecated: use New().CompileFunction with a context.
func CompileFunction(f *ir.Function, cfg *machine.Config) (*codegen.FunctionResult, error) {
	return New().CompileFunction(context.Background(), f, cfg)
}

// CompileLoopWith runs the pipeline with an alternative partitioning
// method; see Partitioners for the available baselines.
//
// Deprecated: use New(WithPartitioner(p)).Compile with a context.
func CompileLoopWith(l *ir.Loop, cfg *machine.Config, p partition.Partitioner) (*codegen.Result, error) {
	return New(WithPartitioner(p)).Compile(context.Background(), l, cfg)
}

// Partitioners returns every implemented partitioning method, the paper's
// RCG greedy first.
func Partitioners() []partition.Partitioner {
	return []partition.Partitioner{
		partition.Greedy{}, partition.BUG{}, partition.UAS{},
		partition.RoundRobin{}, partition.Random{Seed: 1}, partition.SingleBank{},
	}
}

// ExpandPipeline flattens a compiled loop's clustered modulo schedule into
// prelude, kernel and postlude code for the given trip count (Section 2's
// pipeline setup and drain).
func ExpandPipeline(res *codegen.Result, trip int) (*modulo.Expansion, error) {
	return modulo.Expand(res.PartSched, res.Copies.Body, trip)
}

// Unroll replicates a loop body u times with register renaming and
// subscript rewriting — the preprocessing step that exposes more
// parallelism to software pipelining.
func Unroll(l *ir.Loop, u int) (*ir.Loop, error) { return transform.Unroll(l, u) }

// MinII returns the initiation-interval lower bounds of a loop on a
// machine: the recurrence bound, the resource bound and their maximum.
func MinII(l *ir.Loop, cfg *machine.Config) (rec, res, min int) {
	g := ddg.Build(l.Body, cfg, ddg.Options{Carried: true})
	rec = g.RecMII()
	res = ddg.ResMII(len(l.Body.Ops), cfg.Width)
	min = rec
	if res > min {
		min = res
	}
	return rec, res, min
}

// TuneWeights runs the paper's proposed off-line stochastic optimization
// of the heuristic weights on the given training loops and machines.
func TuneWeights(loops []*ir.Loop, cfgs []*machine.Config, iterations int, seed int64) *tune.Result {
	return tune.Search(tune.SuiteObjective(loops, cfgs, 0), tune.Options{Iterations: iterations, Seed: seed})
}

// ParseLoop parses a loop body in the printer's assembly-like format.
func ParseLoop(name, src string) (*ir.Loop, error) { return ir.ParseLoop(name, src) }

// CompileLoopRefined runs the pipeline and then iteratively improves the
// partition by relocating copy-causing registers while the clustered II
// exceeds the ideal — the iteration the paper's Section 6.3 defers to
// future work.
//
// Deprecated: use New().CompileRefined with a context.
func CompileLoopRefined(l *ir.Loop, cfg *machine.Config) (*codegen.Result, *codegen.RefineStats, error) {
	return New().CompileRefined(context.Background(), l, cfg)
}
