package swp

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/cache"
	"repro/internal/cluster"
	"repro/internal/codegen"
	"repro/internal/server"
	"repro/internal/trace"
)

// clusterWorkingSet is the benchmark's request population: distinct suite
// loops on the 4-cluster copy-unit machine, the grid's expensive corner.
func clusterWorkingSet(n int) []server.CompileRequest {
	loops := Suite()[:n]
	reqs := make([]server.CompileRequest, len(loops))
	for i, l := range loops {
		reqs[i] = server.CompileRequest{
			Name:    l.Name,
			Source:  l.Body.String(),
			Machine: server.MachineSpec{Clusters: 4, CopyModel: "copyunit"},
		}
	}
	return reqs
}

// startFleet spins up n replicas (each with its own cache of the given
// byte budget; 0 = unbounded) behind a pure routing gateway, and returns
// the gateway's base URL plus a teardown.
func startFleet(b *testing.B, n int, budget int64) (string, func()) {
	b.Helper()
	var closers []func()
	peers := make([]string, n)
	for i := range peers {
		c := cache.New()
		if budget > 0 {
			c.SetBudget(budget)
		}
		svc := server.New(server.Config{
			Pipeline: codegen.Config{Cache: c, Tracer: trace.New()},
		})
		ts := httptest.NewServer(svc.Handler())
		peers[i] = ts.URL
		closers = append(closers, ts.Close, svc.Close)
	}
	rt := cluster.NewRouter(cluster.Config{Peers: peers})
	gw := server.New(server.Config{Workers: 1, QueueDepth: 1, Cluster: rt})
	gts := httptest.NewServer(gw.Handler())
	closers = append(closers, gts.Close, gw.Close)
	return gts.URL, func() {
		for i := len(closers) - 1; i >= 0; i-- {
			closers[i]()
		}
	}
}

// BenchmarkClusterWarm measures warm-state sharing across the fleet: 32
// distinct compiles routed by fingerprint through a gateway onto 3
// replicas, swept repeatedly. After the untimed warm-up sweep every
// request must land on the replica that already owns its state, so
// cross_replica_warm_hit_rate is the fraction of routed requests answered
// from a replica cache — the tentpole number, with 0.9 the floor
// scripts/bench.sh enforces. One op is a full 32-request sweep.
func BenchmarkClusterWarm(b *testing.B) {
	gw, stop := startFleet(b, 3, 0)
	defer stop()

	reqs := clusterWorkingSet(32)
	bodies := make([][]byte, len(reqs))
	for i := range reqs {
		body, err := json.Marshal(&reqs[i])
		if err != nil {
			b.Fatal(err)
		}
		bodies[i] = body
	}
	client := &http.Client{}
	sweep := func() (hits int) {
		for _, body := range bodies {
			resp, err := client.Post(gw+"/v1/compile", "application/json", bytes.NewReader(body))
			if err != nil {
				b.Fatal(err)
			}
			var out server.CompileResponse
			if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
				b.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				b.Fatalf("status %d", resp.StatusCode)
			}
			if out.CacheHit {
				hits++
			}
		}
		return hits
	}
	sweep() // warm-up: every fingerprint now owned by one warm replica

	hits, total := 0, 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hits += sweep()
		total += len(bodies)
	}
	b.StopTimer()
	if total > 0 {
		b.ReportMetric(float64(hits)/float64(total), "cross_replica_warm_hit_rate")
	}
}

// benchClusterBatch is the capacity half of the cluster story: every
// replica carries the same bounded cache (half the working set), so a
// single replica thrashes — each sweep's CLOCK evictions force
// recompiles — while 3 replicas shard the set by fingerprint, each share
// fits its owner's budget, and the fleet stays warm. The scaling factor
// (scripts/bench.sh derives it as BenchmarkClusterBatch1 ns/op over
// BenchmarkClusterBatch3 ns/op) is aggregate cache capacity, which holds
// on any core count. One op is one /v1/compile/batch round trip carrying
// the whole working set; batch_loops_per_sec is comparable with
// BenchmarkServerBatch.
func benchClusterBatch(b *testing.B, replicas int) {
	reqs := clusterWorkingSet(24)

	// Measure the working set's resident bytes on a probe cache, then
	// give every replica half of it.
	probe := cache.New()
	{
		svc := server.New(server.Config{Pipeline: codegen.Config{Cache: probe, Tracer: trace.New()}})
		ts := httptest.NewServer(svc.Handler())
		breq := server.BatchRequest{Items: reqs}
		body, err := json.Marshal(&breq)
		if err != nil {
			b.Fatal(err)
		}
		resp, err := http.Post(ts.URL+"/v1/compile/batch", "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
		ts.Close()
		svc.Close()
	}
	budget := probe.Stats().Bytes / 2
	if budget <= 0 {
		b.Fatal("probe compile recorded no cache bytes")
	}

	gw, stop := startFleet(b, replicas, budget)
	defer stop()

	breq := server.BatchRequest{Items: reqs}
	body, err := json.Marshal(&breq)
	if err != nil {
		b.Fatal(err)
	}
	client := &http.Client{}
	run := func() {
		resp, err := client.Post(gw+"/v1/compile/batch", "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		var out server.BatchResponse
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || out.Errors != 0 || len(out.Items) != len(reqs) {
			b.Fatalf("batch: status %d, %d items, %d errors", resp.StatusCode, len(out.Items), out.Errors)
		}
	}
	run() // populate what fits; the timed sweeps are the steady state

	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		run()
	}
	if elapsed := time.Since(start); elapsed > 0 {
		b.ReportMetric(float64(b.N*len(reqs))/elapsed.Seconds(), "batch_loops_per_sec")
	}
}

// BenchmarkClusterBatch1 is the whole working set against one replica
// whose cache holds only half of it: the steady state recompiles.
func BenchmarkClusterBatch1(b *testing.B) { benchClusterBatch(b, 1) }

// BenchmarkClusterBatch3 is the same working set and the same per-replica
// budget across 3 fingerprint-routed replicas: each ring share fits, the
// fleet serves from memory.
func BenchmarkClusterBatch3(b *testing.B) { benchClusterBatch(b, 3) }
